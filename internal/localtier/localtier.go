// Package localtier implements the node-local write-back tier of the
// multilevel checkpointing scheme (stdchk / OpenCHK style): captured dirty
// sets land in a cheap nearby chunk store first — typically the seglog disk
// engine on the compute node — and a background drainer streams them into
// the striped remote plane at whatever rate it sustains.
//
// A Stage holds two kinds of captures, distinguished by the Replica flag:
// the node's own staged checkpoints and partner replicas pushed by a
// neighbor proxy. A checkpoint is *locally safe* once its capture is staged
// here and replicated to the partner — a single node loss can then never
// lose it — and becomes *globally durable* only when the drain publishes it
// into the remote repository. MarkDrained records the published snapshot per
// owner, so a partner draining on a dead node's behalf can chain incremental
// captures in sequence order.
package localtier

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"

	"blobcr/internal/blobseer"
	"blobcr/internal/chunkstore"
	"blobcr/internal/obs"
)

// ErrNotStaged is returned when a capture's chunks are no longer (or never
// were) in the stage.
var ErrNotStaged = errors.New("localtier: capture not staged")

// Capture is one staged dirty set: the unit the drainer publishes.
type Capture struct {
	// Owner is the VM whose checkpoint this is; Seq orders the owner's
	// captures (the drain must publish them in Seq order to keep the
	// incremental chain intact).
	Owner string
	Seq   uint64
	// Base is the published snapshot the capture overlays *as recorded at
	// capture time*. When draining on a dead owner's behalf, the partner
	// carries the chain forward from the last drained ref instead when the
	// sequence is contiguous.
	Base      blobseer.SnapshotRef
	Size      uint64
	ChunkSize uint64
	// Replica marks a partner copy pushed by a neighbor proxy, as opposed to
	// a capture staged by the node's own mirror modules.
	Replica bool

	stageBlob uint64 // chunk namespace in the backing store
	indices   []uint64
	bytes     uint64
}

// Indices returns the chunk indices the capture covers, in staging order.
func (c *Capture) Indices() []uint64 { return append([]uint64(nil), c.indices...) }

// Bytes returns the capture's staged payload size.
func (c *Capture) Bytes() uint64 { return c.bytes }

// Backlog summarizes staged-but-undrained captures.
type Backlog struct {
	Checkpoints int
	Chunks      int
	Bytes       uint64
}

type entry struct {
	cap *Capture
	sw  obs.Stopwatch // staged-at; drain lag = elapsed when MarkDrained runs
}

type drainMemo struct {
	seq uint64
	ref blobseer.SnapshotRef
}

// Stage is one node's local fast tier over a chunk store.
type Stage struct {
	store chunkstore.Store

	mu        sync.Mutex
	owners    map[string]map[uint64]*entry // owner -> seq -> staged capture
	memo      map[string]drainMemo         // owner -> last drained capture
	nextBlob  uint64
	gCkptOwn  *obs.Gauge
	gCkptPart *obs.Gauge
	gByteOwn  *obs.Gauge
	gBytePart *obs.Gauge
	cStaged   *obs.Counter
	cDrained  *obs.Counter
	cDropped  *obs.Counter
	hStage    *obs.Histogram
	hDrainLag *obs.Histogram
}

// New returns a Stage over store, recording tier metrics into reg (Default
// when nil): staged-checkpoint/byte gauges split by role (own vs partner),
// stage/drain counters, the staging-latency histogram and the drain-lag
// histogram — how long a capture sat locally safe before it became durable.
func New(store chunkstore.Store, reg *obs.Registry) *Stage {
	if reg == nil {
		reg = obs.Default
	}
	return &Stage{
		store:     store,
		owners:    make(map[string]map[uint64]*entry),
		memo:      make(map[string]drainMemo),
		gCkptOwn:  reg.Gauge("localtier_staged_checkpoints", obs.L("role", "own")),
		gCkptPart: reg.Gauge("localtier_staged_checkpoints", obs.L("role", "partner")),
		gByteOwn:  reg.Gauge("localtier_staged_bytes", obs.L("role", "own")),
		gBytePart: reg.Gauge("localtier_staged_bytes", obs.L("role", "partner")),
		cStaged:   reg.Counter("localtier_staged_total"),
		cDrained:  reg.Counter("localtier_drained_total"),
		cDropped:  reg.Counter("localtier_dropped_total"),
		hStage:    reg.Histogram("localtier_stage_ns"),
		hDrainLag: reg.Histogram("localtier_drain_lag_ns"),
	}
}

// Put stages one capture. Staging the same (owner, seq) again replaces the
// previous copy (a partner push retried after a wire error is idempotent).
func (s *Stage) Put(owner string, seq uint64, base blobseer.SnapshotRef, size, chunkSize uint64, writes map[uint64][]byte, replica bool) (*Capture, error) {
	sw := obs.StartTimer()
	s.mu.Lock()
	defer s.mu.Unlock()
	if old, ok := s.owners[owner][seq]; ok {
		s.removeLocked(old.cap)
	}
	c := &Capture{
		Owner:     owner,
		Seq:       seq,
		Base:      base,
		Size:      size,
		ChunkSize: chunkSize,
		Replica:   replica,
		stageBlob: s.nextBlob,
	}
	s.nextBlob++
	for idx, data := range writes {
		if err := s.store.Put(chunkstore.Key{Blob: c.stageBlob, ID: idx}, data); err != nil {
			// Roll back the partial stage so the store holds no orphans.
			for _, done := range c.indices {
				s.store.Delete(chunkstore.Key{Blob: c.stageBlob, ID: done})
			}
			return nil, fmt.Errorf("localtier: stage %s seq %d chunk %d: %w", owner, seq, idx, err)
		}
		c.indices = append(c.indices, idx)
		c.bytes += uint64(len(data))
	}
	sort.Slice(c.indices, func(i, j int) bool { return c.indices[i] < c.indices[j] })
	if s.owners[owner] == nil {
		s.owners[owner] = make(map[uint64]*entry)
	}
	s.owners[owner][seq] = &entry{cap: c, sw: sw}
	s.gauges(c).ckpt.Add(1)
	s.gauges(c).bytes.Add(int64(c.bytes))
	s.cStaged.Inc()
	sw.ObserveInto(s.hStage)
	return c, nil
}

type rolePair struct{ ckpt, bytes *obs.Gauge }

func (s *Stage) gauges(c *Capture) rolePair {
	if c.Replica {
		return rolePair{s.gCkptPart, s.gBytePart}
	}
	return rolePair{s.gCkptOwn, s.gByteOwn}
}

// Writes reads a staged capture's chunks back from the store.
func (s *Stage) Writes(c *Capture) (map[uint64][]byte, error) {
	writes := make(map[uint64][]byte, len(c.indices))
	for _, idx := range c.indices {
		data, err := s.store.Get(chunkstore.Key{Blob: c.stageBlob, ID: idx})
		if err != nil {
			return nil, fmt.Errorf("%w: %s seq %d chunk %d: %v", ErrNotStaged, c.Owner, c.Seq, idx, err)
		}
		writes[idx] = data
	}
	return writes, nil
}

// Pending returns the owner's staged-but-undrained captures in Seq order.
func (s *Stage) Pending(owner string) []*Capture {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []*Capture
	for _, e := range s.owners[owner] {
		out = append(out, e.cap)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// Owners returns every owner with at least one staged capture.
func (s *Stage) Owners() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.owners))
	for owner, pending := range s.owners {
		if len(pending) > 0 {
			out = append(out, owner)
		}
	}
	sort.Strings(out)
	return out
}

// MarkDrained records that the owner's capture seq was published as ref,
// removes its staged chunks, and observes the capture's drain lag. It is
// tolerant of captures already gone (a partner release arriving after a
// Drop): the memo still advances so chain state survives.
func (s *Stage) MarkDrained(owner string, seq uint64, ref blobseer.SnapshotRef) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.owners[owner][seq]; ok {
		e.sw.ObserveInto(s.hDrainLag)
		s.removeLocked(e.cap)
		s.cDrained.Inc()
	}
	if m, ok := s.memo[owner]; !ok || seq >= m.seq {
		s.memo[owner] = drainMemo{seq: seq, ref: ref}
	}
}

// LastDrained returns the owner's most recently drained capture sequence and
// the snapshot it published.
func (s *Stage) LastDrained(owner string) (seq uint64, ref blobseer.SnapshotRef, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	m, ok := s.memo[owner]
	return m.seq, m.ref, ok
}

// Drop discards every staged capture for owner (both roles) without marking
// anything drained, returning how many were removed. Used when an owner's
// chain is superseded — a rollback, or a re-registration after restart.
func (s *Stage) Drop(owner string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, e := range s.owners[owner] {
		s.removeLocked(e.cap)
		s.cDropped.Inc()
		n++
	}
	delete(s.owners, owner)
	delete(s.memo, owner)
	return n
}

// removeLocked deletes a capture's chunks and bookkeeping. Caller holds s.mu.
func (s *Stage) removeLocked(c *Capture) {
	for _, idx := range c.indices {
		s.store.Delete(chunkstore.Key{Blob: c.stageBlob, ID: idx})
	}
	if pending, ok := s.owners[c.Owner]; ok {
		delete(pending, c.Seq)
		if len(pending) == 0 {
			delete(s.owners, c.Owner)
		}
	}
	s.gauges(c).ckpt.Add(-1)
	s.gauges(c).bytes.Add(-int64(c.bytes))
}

// Backlog returns the staged-but-undrained totals, split into the node's own
// captures and the partner replicas it holds for its neighbor.
func (s *Stage) Backlog() (own, partner Backlog) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, pending := range s.owners {
		for _, e := range pending {
			b := &own
			if e.cap.Replica {
				b = &partner
			}
			b.Checkpoints++
			b.Chunks += len(e.cap.indices)
			b.Bytes += e.cap.bytes
		}
	}
	return own, partner
}

// OwnerBacklog returns the staged-but-undrained totals for one owner.
func (s *Stage) OwnerBacklog(owner string) Backlog {
	s.mu.Lock()
	defer s.mu.Unlock()
	var b Backlog
	for _, e := range s.owners[owner] {
		b.Checkpoints++
		b.Chunks += len(e.cap.indices)
		b.Bytes += e.cap.bytes
	}
	return b
}

// Close closes the backing store when the Stage owns one that is closable.
func (s *Stage) Close() error {
	if c, ok := s.store.(io.Closer); ok {
		return c.Close()
	}
	return nil
}
