package supervisor

import "testing"

func TestDetectorSuspicionThreshold(t *testing.T) {
	d := newDetector(3)
	if s, c := d.observe("n1", false); !s || c {
		t.Fatalf("first miss: suspected=%v confirmed=%v", s, c)
	}
	if s, c := d.observe("n1", false); s || c {
		t.Fatalf("second miss: suspected=%v confirmed=%v", s, c)
	}
	if _, c := d.observe("n1", false); !c {
		t.Fatal("third consecutive miss not confirmed")
	}
	// Confirmation resets the streak: one failure is confirmed once.
	if _, c := d.observe("n1", false); c {
		t.Fatal("confirmed again immediately after confirmation")
	}
}

func TestDetectorRecoversOnSuccess(t *testing.T) {
	d := newDetector(2)
	d.observe("n1", false)
	// A successful ping clears the suspicion: transient hiccups never
	// trigger recovery.
	d.observe("n1", true)
	if _, c := d.observe("n1", false); c {
		t.Fatal("single miss after success confirmed a failure")
	}
	if _, c := d.observe("n1", false); !c {
		t.Fatal("two consecutive misses not confirmed")
	}
}

func TestDetectorThresholdOne(t *testing.T) {
	d := newDetector(1)
	if s, c := d.observe("n1", false); !s || !c {
		t.Fatalf("threshold 1: suspected=%v confirmed=%v, want both", s, c)
	}
	d.forget("n1")
	if _, c := d.observe("n2", false); !c {
		t.Fatal("independent node not confirmed at threshold 1")
	}
}
