package supervisor

import (
	"context"
	"fmt"

	"blobcr/internal/cloud"
	"blobcr/internal/health"
	"blobcr/internal/obs"
)

// startHealth wires the cluster health plane at construction: the federation
// scraper and SLO engine over the supervisor's own registry, whose history
// ring is sampled manually once per federation round so every window query
// aligns with scrape rounds. The engine's status backs the HEALTH verb and
// any /healthz listener sharing the registry.
func (s *Supervisor) startHealth(cfg *health.Config) {
	capN := cfg.HistoryCap
	if capN <= 0 {
		capN = 256
	}
	s.reg.StartHistory(0, capN)
	s.fed = &health.Federator{Net: s.cl.Network(), Reg: s.reg, Timeout: s.cfg.PingTimeout}
	s.engine = health.NewEngine(s.reg, cfg.Rules)
	s.engine.OnFire = func(a health.Alert) {
		s.log.append(Event{
			Type: EventAlertFiring, Node: a.Node,
			Detail: fmt.Sprintf("alert=%s value=%g round=%d", a.Rule, a.Value, s.healthRounds()),
		})
	}
	s.engine.OnResolve = func(a health.Alert) {
		s.log.append(Event{
			Type: EventAlertResolved, Node: a.Node,
			Detail: fmt.Sprintf("alert=%s round=%d", a.Rule, s.healthRounds()),
		})
	}
	s.reg.SetHealth(s.engine.Status)
}

// healthRounds reads the federation round counter — the unit detection
// latency is promised in ("fires within 2 scrape periods"), immune to
// scheduler jitter in a way wall-clock assertions are not.
func (s *Supervisor) healthRounds() uint64 {
	return s.reg.Counter("federation_rounds_total").Value()
}

// Alerts returns the currently firing SLO alerts; nil without Config.Health.
func (s *Supervisor) Alerts() []health.Alert {
	if s.engine == nil {
		return nil
	}
	return s.engine.Active()
}

// healthRound runs one federation sweep over the live nodes, samples the
// cluster ring, and evaluates the SLO rules. Runs inside the heartbeat round
// (gated by Config.Health.Every), reusing the liveness survey's node list so
// a node the detector already confirmed dead is not re-scraped.
func (s *Supervisor) healthRound(ctx context.Context, nodes []*cloud.Node) {
	hcfg := s.cfg.Health
	var targets []health.Target
	for _, node := range nodes {
		targets = append(targets, health.Target{Node: node.Name, Addr: node.ProxyAddr})
		if !hcfg.NoProviders && node.DataAddr != "" {
			targets = append(targets, health.Target{Node: node.Name, Addr: node.DataAddr, Binary: true})
		}
	}
	if hcfg.RepairAddr != "" {
		targets = append(targets, health.Target{Node: "repair", Addr: hcfg.RepairAddr})
	}
	s.fed.Scrape(ctx, targets)
	if h := s.reg.History(); h != nil {
		h.Sample()
		s.evalAlerts(h)
	}
}

// evalAlerts runs the engine and mirrors the active-alert count into a
// gauge (the dashboard's headline number).
func (s *Supervisor) evalAlerts(h *obs.History) {
	active := s.engine.Eval(h)
	s.reg.Gauge("health_alerts_firing").Set(int64(len(active)))
}
