package supervisor_test

// Restart-while-commit-in-flight: a failure is injected while a
// PendingCommit is still publishing. The supervisor must roll back to the
// last durable checkpoint — never the half-published one — and the CAS
// reference counts must balance exactly afterwards.

import (
	"bytes"
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"blobcr/internal/blobseer"
	"blobcr/internal/cloud"
	"blobcr/internal/supervisor"
	"blobcr/internal/transport"
)

// gateNet wraps the in-process network: once armed, the (skip+1)th
// chunk-body upload (spotted by request size) blocks until released or its
// context is cancelled — a commit caught mid-publish.
type gateNet struct {
	*transport.InProc

	mu      sync.Mutex
	armed   bool
	skip    int
	blocked chan struct{} // closed when an upload is stuck on the gate
	release chan struct{}
}

const gateBodyThreshold = 2048

func newGateNet() *gateNet {
	return &gateNet{
		InProc:  transport.NewInProc(),
		blocked: make(chan struct{}),
		release: make(chan struct{}),
	}
}

func (g *gateNet) Call(ctx context.Context, addr string, req []byte) ([]byte, error) {
	if len(req) >= gateBodyThreshold {
		g.mu.Lock()
		trip := false
		if g.armed {
			if g.skip > 0 {
				g.skip--
			} else {
				trip = true
				g.armed = false
				close(g.blocked)
			}
		}
		rel := g.release
		g.mu.Unlock()
		if trip {
			select {
			case <-rel:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
	}
	return g.InProc.Call(ctx, addr, req)
}

// arm trips the gate on the (skip+1)th chunk-body upload.
func (g *gateNet) arm(skip int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.armed = true
	g.skip = skip
	g.blocked = make(chan struct{})
	g.release = make(chan struct{})
}

func (g *gateNet) open() {
	g.mu.Lock()
	defer g.mu.Unlock()
	select {
	case <-g.release:
	default:
		close(g.release)
	}
}

// commitGateConfig disables automatic checkpoints (tests drive them) and
// uses full restarts, so a wedged commit never delays the in-place drain.
func commitGateConfig() supervisor.Config {
	return supervisor.Config{
		HeartbeatEvery: 2 * time.Millisecond,
		PingTimeout:    10 * time.Millisecond,
		SuspectAfter:   2,
		MinInterval:    time.Hour,
		MaxInterval:    time.Hour,
		BackoffBase:    2 * time.Millisecond,
	}
}

// TestRecoveryRollsBackToDurableNotHalfPublished wedges a checkpoint's
// async commit mid-upload, kills a node, and asserts the supervisor plans
// the rollback to the durable watermark while the half-published checkpoint
// stays refused forever — even after its orphaned snapshot eventually
// publishes, later checkpoints never absorb its content (the rollback-safe
// commit base).
func TestRecoveryRollsBackToDurableNotHalfPublished(t *testing.T) {
	g := newGateNet()
	h := newHarness(t, commitGateConfig(), 5, 2, g)
	dep, _ := h.sup.Deployment()

	// Round 1 everywhere, durable checkpoint.
	writeRound(t, dep, 1)
	id1 := h.checkpointDurable()

	// Fresh post-checkpoint state on member 0, then a checkpoint whose
	// upload wedges on the gate.
	instA := dep.Instances[0]
	wedged := bytes.Repeat([]byte("WEDGED-WRITE."), 1024) // > 3 chunks of distinctive content
	if err := instA.VM.FS().WriteFile("/fresh", wedged); err != nil {
		t.Fatal(err)
	}
	g.arm(0)
	id2, err := h.sup.CheckpointNow(ctx)
	if err != nil {
		t.Fatal(err)
	}
	<-g.blocked // a body upload is stuck: checkpoint id2 is half-published

	// Failure hits member 1's node while id2 is in flight.
	h.kill(dep.Instances[1].Node)
	newDep := h.waitGeneration(1)

	// The rollback target was the durable watermark, not the in-flight
	// checkpoint.
	if got := newDep.DurableWatermark(); got != id1 {
		t.Fatalf("watermark after recovery = %d, want %d", got, id1)
	}
	var planned *supervisor.Event
	for _, e := range h.sup.Events().Since(0) {
		if e.Type == supervisor.EventRollbackPlanned {
			planned = &e
		}
	}
	if planned == nil || planned.Ckpt != id1 {
		t.Fatalf("rollback planned to %+v, want checkpoint %d\n%s", planned, id1, h.eventDump())
	}
	for _, inst := range newDep.Instances {
		if _, err := inst.VM.FS().ReadFile("/fresh"); err == nil {
			t.Fatalf("%s: half-published state visible after rollback", inst.VMID)
		}
	}

	// Let the wedged upload finish: the orphaned snapshot publishes (write
	// failover routes around the dead provider), but the checkpoint record
	// can never complete — its dead member's handle is gone.
	g.open()
	ckptA := id1Snapshot(t, dep, id1, instA.VMID)
	waitOrphan(t, h, ckptA.Blob, ckptA.Version)
	if cps := newDep.Checkpoints(); cps[id2-1].Durable {
		t.Fatal("half-published checkpoint became durable")
	}

	// Post-recovery work and a fresh durable checkpoint: it must not
	// resurrect the orphan's content even though the orphan is the newest
	// version of member 0's checkpoint image.
	writeRound(t, newDep, 2)
	id3 := h.checkpointDurable()
	cp := checkpointByID(t, newDep, id3)
	refA := cp.Snapshots[instA.VMID]
	img, err := h.cl.Client().ReadVersion(ctx, refA, 0, 512*1024)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(img, []byte("WEDGED-WRITE.")) {
		t.Fatal("post-recovery snapshot absorbed the orphaned half-published writes")
	}

	// Pruning to the new checkpoint works with a dead provider in the
	// cluster (live-provider sweep).
	if _, err := h.cl.Prune(ctx, newDep, id3); err != nil {
		t.Fatalf("prune after recovery: %v", err)
	}
	if _, err := h.cl.Restart(ctx, newDep, id3); err != nil {
		t.Fatalf("restart from pruned checkpoint: %v", err)
	}
}

// TestFailureDuringCommitExactRefcountBalance overlaps an application-level
// async commit with a node failure and recovery, then cancels the commit:
// every CAS reference the whole dance touched must balance exactly — the
// live providers end with the same reference and body counts they had
// before the commit started.
func TestFailureDuringCommitExactRefcountBalance(t *testing.T) {
	g := newGateNet()
	h := newHarness(t, commitGateConfig(), 5, 2, g)
	dep, _ := h.sup.Deployment()

	writeRound(t, dep, 1)
	h.checkpointDurable()

	// The victim is chosen up front so the measured provider set is stable
	// across the failure.
	victim := dep.Instances[1].Node
	var live []string
	for _, n := range h.cl.Nodes() {
		if n != victim {
			live = append(live, n.DataAddr)
		}
	}
	cl := h.cl.Client()
	before, err := cl.CasStats(ctx, live)
	if err != nil {
		t.Fatal(err)
	}

	// An application-driven commit on the healthy member, wedged before its
	// first body lands (no reference taken yet).
	instA := dep.Instances[0]
	if err := instA.VM.FS().WriteFile("/fresh", bytes.Repeat([]byte{0xEF}, 3*e2eChunk)); err != nil {
		t.Fatal(err)
	}
	g.arm(0)
	cctx, cancel := context.WithCancel(ctx)
	pc, err := instA.Mirror.CommitAsync(cctx)
	if err != nil {
		t.Fatal(err)
	}
	<-g.blocked

	// Failure and unattended recovery while the commit is still in flight.
	h.kill(victim)
	newDep := h.waitGeneration(1)

	// The commit aborts; its abort path must return every reference.
	cancel()
	<-pc.Done()
	if err := pc.Err(); !errors.Is(err, context.Canceled) {
		t.Fatalf("wedged commit err = %v, want context.Canceled", err)
	}
	after, err := cl.CasStats(ctx, live)
	if err != nil {
		t.Fatal(err)
	}
	if after.Refs != before.Refs || after.Chunks != before.Chunks {
		t.Fatalf("CAS refcounts unbalanced: refs %d -> %d, bodies %d -> %d",
			before.Refs, after.Refs, before.Chunks, after.Chunks)
	}

	// The aborted ticket does not wedge the version chain: the recovered
	// deployment still reaches a new durable checkpoint.
	writeRound(t, newDep, 2)
	h.checkpointDurable()
}

// id1Snapshot fetches a member's snapshot ref out of a recorded checkpoint.
func id1Snapshot(t *testing.T, dep *cloud.Deployment, id int, vmID string) blobseer.SnapshotRef {
	t.Helper()
	return checkpointByID(t, dep, id).Snapshots[vmID]
}

func checkpointByID(t *testing.T, dep *cloud.Deployment, id int) cloud.GlobalCheckpoint {
	t.Helper()
	for _, cp := range dep.Checkpoints() {
		if cp.ID == id {
			return cp
		}
	}
	t.Fatalf("checkpoint %d not recorded", id)
	return cloud.GlobalCheckpoint{}
}

// waitOrphan polls until the blob's latest version moves past v — the
// wedged commit published its orphan.
func waitOrphan(t *testing.T, h *harness, blob, v uint64) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		info, _, err := h.cl.Client().Latest(ctx, blob)
		if err == nil && info.Version > v {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("orphan never published (latest %v, %v)", info, err)
		}
		time.Sleep(time.Millisecond)
	}
}
