package supervisor_test

// Storage-plane self-healing: with Config.Repair set, a confirmed node
// failure triggers a background scrub + re-replication pass, so the
// repository returns to full replication with zero operator action — the
// storage-plane twin of the compute-plane recovery the other tests cover.

import (
	"testing"
	"time"

	"blobcr/internal/cloud"
	"blobcr/internal/repair"
	"blobcr/internal/supervisor"
	"blobcr/internal/vm"
)

func TestFailureTriggersStorageRepair(t *testing.T) {
	cl, err := cloud.New(cloud.Config{Nodes: 4, MetaProviders: 2, Replication: 2, Dedup: true, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	base, err := cl.UploadBaseImage(ctx, make([]byte, 256*1024), e2eChunk)
	if err != nil {
		t.Fatal(err)
	}
	dep, err := cl.Deploy(ctx, 2, base, vm.Config{BlockSize: 512, BootNoiseBytes: 8192})
	if err != nil {
		t.Fatal(err)
	}
	rep := repair.New(repair.Config{Client: cl.Client()})
	sup := supervisor.New(cl, dep, supervisor.Config{
		HeartbeatEvery: 2 * time.Millisecond,
		PingTimeout:    20 * time.Millisecond,
		SuspectAfter:   2,
		MinInterval:    time.Hour,
		MaxInterval:    time.Hour,
		BackoffBase:    2 * time.Millisecond,
		PartialRestart: true,
		Repair:         rep,
	})
	done := make(chan struct{})
	go func() {
		defer close(done)
		sup.Run(t.Context()) // cancelled when the test ends
	}()
	t.Cleanup(func() { <-done })

	// A durable checkpoint, then an unannounced node failure.
	for _, inst := range dep.Instances {
		inst.VM.FS().WriteFile("/progress", []byte("round-1"))
	}
	id, err := sup.CheckpointNow(ctx)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for dep.DurableWatermark() < id {
		if time.Now().After(deadline) {
			t.Fatal("checkpoint never became durable")
		}
		time.Sleep(time.Millisecond)
	}
	victim := dep.Instances[0].Node
	net := cl.Network()
	net.Partition(victim.ProxyAddr)
	net.Partition(victim.DataAddr)
	for _, inst := range dep.Instances {
		if inst.Node == victim {
			inst.VM.Kill()
		}
	}

	// The supervisor recovers the compute plane...
	for {
		if _, gen := sup.Deployment(); gen >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("recovery never completed: %+v", sup.Metrics())
		}
		time.Sleep(time.Millisecond)
	}
	// ...and the triggered repair heals the storage plane.
	for {
		var repaired, failed bool
		for _, e := range sup.Events().Since(0) {
			switch e.Type {
			case supervisor.EventRepairDone:
				repaired = true
			case supervisor.EventRepairFailed:
				failed = true
			}
		}
		if failed {
			t.Fatalf("storage repair failed: %v", sup.Events().Since(0))
		}
		if repaired {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no storage-repair-done event: %v", sup.Events().Since(0))
		}
		time.Sleep(time.Millisecond)
	}
	m := sup.Metrics()
	if m.StorageRepairs == 0 || m.ReplicasRestored == 0 {
		t.Fatalf("repair metrics empty: %+v", m)
	}
	// The plane is whole again: a scrub on the surviving membership is clean.
	scrub, err := rep.Scrub(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !scrub.Clean() {
		t.Fatalf("post-repair scrub dirty: %s", scrub)
	}
}
