package supervisor

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"blobcr/internal/obs"
	"blobcr/internal/transport"
)

// Serve binds the supervisor's introspection endpoint on the network, for
// blobcr-ctl events and external dashboards. The protocol is the same
// REST-ful text style as the checkpointing proxy:
//
//	request:  EVENTS <since-seq>
//	response: OK <n>\n<one event line per event> | ERR <message>
//
//	request:  STATUS
//	response: OK gen=<generation> watermark=<ckpt-id> local-watermark=<ckpt-id>
//	             interval=<duration> recoveries=<n> mean-mttr=<duration>
//	             work-lost=<duration> repairs=<n> replicas-restored=<n>
//	             storage-mttr=<duration>
//	             [backlog.<node>=<ckpts>/<chunks>/<bytes> ...]
//
// local-watermark is the multilevel first watermark: the newest checkpoint
// staged in every member's node-local tier and partner replica (always ≥
// watermark; equal when the drain has caught up or no local tier runs). The
// backlog fields — one per local-tier node, own captures and held partner
// replicas combined — are what the drain still owes the remote plane.
//
//	request:  METRICS [<offset>]
//	response: OK v1\n<exposition chunk> | OK v1 MORE <next-offset>\n<chunk>
//
//	request:  TRACE <trace-hex> | FLIGHT | FLIGHT <node>
//	response: OK v1\n<span lines> — the supervisor's own span stores for the
//	          first two; FLIGHT <node> serves the named node's retained
//	          flight-recorder dump (the archived post-mortem once the node's
//	          death is confirmed), with FINAL appended to the header of an
//	          archived dump: OK v1 FINAL\n<span lines>.
func (s *Supervisor) Serve(n transport.Network, addr string) (transport.Server, error) {
	return n.Listen(addr, s.handle)
}

func (s *Supervisor) handle(_ context.Context, req []byte) ([]byte, error) {
	fields := strings.Fields(string(req))
	if len(fields) == 0 {
		return []byte("ERR malformed request"), nil
	}
	if resp, handled := s.reg.TextReply(fields); handled {
		return resp, nil
	}
	switch fields[0] {
	case "EVENTS":
		since := 0
		if len(fields) > 2 {
			return []byte("ERR malformed request"), nil
		}
		if len(fields) == 2 {
			v, err := strconv.Atoi(fields[1])
			if err != nil {
				return []byte("ERR bad sequence number"), nil
			}
			since = v
		}
		events := s.log.Since(since)
		var b strings.Builder
		fmt.Fprintf(&b, "OK %d", len(events))
		for _, e := range events {
			b.WriteByte('\n')
			b.WriteString(e.String())
		}
		return []byte(b.String()), nil
	case "FLIGHT":
		// Bare FLIGHT (the supervisor's own ring) is answered by TextReply
		// above; with an argument it serves a node's mirrored dump.
		if len(fields) != 2 {
			return []byte("ERR malformed flight request"), nil
		}
		d, ok := s.Flight(fields[1])
		if !ok {
			return []byte("ERR no flight dump for node " + fields[1]), nil
		}
		head := "OK " + obs.ExpositionVersion
		if d.Final {
			head += " FINAL"
		}
		return append([]byte(head+"\n"), obs.MarshalSpans(d.Spans)...), nil
	case "STATUS":
		dep, gen := s.Deployment()
		m := s.Metrics()
		var b strings.Builder
		fmt.Fprintf(&b, "OK gen=%d watermark=%d local-watermark=%d interval=%s recoveries=%d mean-mttr=%s work-lost=%s repairs=%d replicas-restored=%d storage-mttr=%s",
			gen, dep.DurableWatermark(), dep.LocalWatermark(), s.Interval(), m.Recoveries, m.MeanMTTR(), m.WorkLost,
			m.StorageRepairs, m.ReplicasRestored, m.LastStorageMTTR)
		backlogs := s.Backlogs()
		nodes := make([]string, 0, len(backlogs))
		for name := range backlogs {
			nodes = append(nodes, name)
		}
		sort.Strings(nodes)
		for _, name := range nodes {
			nb := backlogs[name]
			fmt.Fprintf(&b, " backlog.%s=%d/%d/%d", name,
				nb.Own.Checkpoints+nb.Partner.Checkpoints,
				nb.Own.Chunks+nb.Partner.Chunks,
				nb.Own.Bytes+nb.Partner.Bytes)
		}
		return []byte(b.String()), nil
	default:
		return []byte("ERR unknown verb " + fields[0]), nil
	}
}
