package supervisor

import (
	"fmt"
	"sync"
	"testing"
)

// TestEventLogRingBoundsMemory checks the fixed-capacity ring: capacity is
// allocated once, overflow overwrites oldest, drops are counted, and Since
// still returns contiguous newest history across the wrap point.
func TestEventLogRingBoundsMemory(t *testing.T) {
	l := newEventLog(4)
	var drops int
	l.onDrop = func() { drops++ }

	for i := 0; i < 10; i++ {
		l.append(Event{Type: EventCheckpointDurable, Detail: fmt.Sprintf("e%d", i)})
	}
	if got := l.Dropped(); got != 6 {
		t.Fatalf("Dropped() = %d, want 6", got)
	}
	if drops != 6 {
		t.Fatalf("onDrop fired %d times, want 6", drops)
	}
	events := l.Since(0)
	if len(events) != 4 {
		t.Fatalf("retained %d events, want 4", len(events))
	}
	for i, e := range events {
		if want := 7 + i; e.Seq != want {
			t.Errorf("event %d has seq %d, want %d (newest must survive)", i, e.Seq, want)
		}
	}
	// Since respects sequence filtering inside the ring.
	if got := l.Since(8); len(got) != 2 || got[0].Seq != 9 {
		t.Fatalf("Since(8) = %+v, want seqs 9,10", got)
	}
	if got := l.Since(100); len(got) != 0 {
		t.Fatalf("Since(100) = %+v, want empty", got)
	}
}

// TestEventLogRingConcurrent hammers append/Since/Dropped under -race.
func TestEventLogRingConcurrent(t *testing.T) {
	l := newEventLog(16)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				l.append(Event{Type: EventNodeSuspected})
				l.Since(0)
				l.Dropped()
			}
		}()
	}
	wg.Wait()
	if got := l.Dropped(); got != 4*500-16 {
		t.Fatalf("Dropped() = %d, want %d", got, 4*500-16)
	}
	events := l.Since(0)
	if len(events) != 16 {
		t.Fatalf("retained %d, want 16", len(events))
	}
	for i := 1; i < len(events); i++ {
		if events[i].Seq != events[i-1].Seq+1 {
			t.Fatalf("history not contiguous: %d then %d", events[i-1].Seq, events[i].Seq)
		}
	}
}

// TestEventLogSubscribeSurvivesRing checks subscriptions still deliver in
// order while the ring wraps.
func TestEventLogSubscribeSurvivesRing(t *testing.T) {
	l := newEventLog(2)
	ch, cancel := l.Subscribe()
	defer cancel()
	for i := 0; i < 5; i++ {
		l.append(Event{Type: EventNodeRetired})
	}
	for i := 1; i <= 5; i++ {
		e := <-ch
		if e.Seq != i {
			t.Fatalf("subscriber got seq %d, want %d", e.Seq, i)
		}
	}
}
