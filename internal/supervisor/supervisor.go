// Package supervisor closes BlobCR's checkpoint-restart control loop: it
// turns the hand-driven recovery primitives of internal/cloud into an
// autonomous service, so a deployment survives failure storms with zero
// operator action.
//
// The supervisor runs four responsibilities in one control loop:
//
//   - Failure detection: a heartbeat/suspicion detector pings every node's
//     checkpointing proxy (the lightweight PING verb); a node missing
//     SuspectAfter consecutive pings is confirmed fail-stopped.
//   - Checkpoint cadence: periodic global checkpoints on the Young/Daly
//     interval sqrt(2*C*MTBF)-C (simcloud.OptimalInterval, so the simulator
//     and the live system price the same formula), where C is an EWMA of
//     the observed checkpoint cost and MTBF is configured. On a multilevel
//     deployment (cloud.Config.LocalTier) C is the time to *locally safe* —
//     staged in the node-local fast tier and replicated to the partner — not
//     the time to durable: the local tier is what the job actually waits
//     for, so the cadence tracks local-tier speed and stays dense even when
//     the remote plane is slow.
//   - Rollback planning: with asynchronous commits the newest recorded
//     checkpoint may still be publishing, so recovery targets the newest
//     *globally durable* checkpoint — the durability watermark that
//     cloud.Deployment tracks as commit handles resolve. On a multilevel
//     deployment recovery first tries to *promote* the newest locally-safe
//     checkpoint: drain every member's staged captures (from the member's
//     own surviving tier, or its partner's replica when the node died) and
//     mark the checkpoint durable, so a single node loss never costs a
//     locally-safe checkpoint.
//   - Self-healing restart: bounded retries with exponential backoff,
//     placement on spare nodes, and — when Config.PartialRestart is set —
//     partial restart: only the members that died are re-deployed from
//     their snapshots, healthy members roll back in place with their warm
//     local caches.
//
// Every decision is emitted on a structured event stream (EventLog) with
// MTTR and lost-work accounting; Serve exposes it over the transport for
// blobcr-ctl supervise/events.
package supervisor

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"blobcr/internal/cloud"
	"blobcr/internal/health"
	"blobcr/internal/localtier"
	"blobcr/internal/obs"
	"blobcr/internal/proxy"
	"blobcr/internal/repair"
	"blobcr/internal/simcloud"
	"blobcr/internal/vm"
)

// ErrNoDurableCheckpoint is returned when a failure hits before any global
// checkpoint has become durable: there is nothing to roll back to.
var ErrNoDurableCheckpoint = errors.New("supervisor: no durable checkpoint to roll back to")

// Config tunes the supervisor.
type Config struct {
	// HeartbeatEvery is the failure detector's ping period (default 50ms).
	HeartbeatEvery time.Duration
	// PingTimeout bounds each liveness probe (default: 4x HeartbeatEvery,
	// so a loaded machine must stay silent, not merely slow, to register a
	// miss).
	PingTimeout time.Duration
	// SuspectAfter is how many consecutive missed pings confirm a node
	// failure (default 3).
	SuspectAfter int

	// MTBF is the expected mean time between failures, the Daly formula's
	// second input (default 1h).
	MTBF time.Duration
	// InitialCkptCost seeds the checkpoint-cost EWMA before the first
	// observation (default 1s).
	InitialCkptCost time.Duration
	// CostSmoothing is the EWMA weight of the newest observation, in (0, 1]
	// (default 0.3).
	CostSmoothing float64
	// MinInterval / MaxInterval clamp the computed checkpoint interval
	// (defaults 100ms / 1h).
	MinInterval time.Duration
	MaxInterval time.Duration

	// MaxRestartRetries bounds restart attempts per recovery episode
	// (default 5). An exhausted episode is not the end: while the
	// deployment stays down, a fresh episode starts every BackoffMax.
	MaxRestartRetries int
	// BackoffBase is the first retry delay, doubling per attempt up to
	// BackoffMax (defaults 50ms / 2s).
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// PartialRestart re-deploys only failed members, rolling healthy ones
	// back in place, instead of tearing down the whole deployment.
	PartialRestart bool

	// Repair, when set, closes the *storage*-plane recovery loop the way
	// the supervisor itself closes the compute-plane one: every confirmed
	// node failure triggers a background repair pass (anti-entropy scrub +
	// re-replication, internal/repair) that restores every live chunk to
	// the configured replication factor on the surviving providers. At most
	// one triggered repair runs at a time; its outcome is evented with the
	// storage MTTR (failure confirmation to clean scrub).
	Repair *repair.Repairer

	// EventBuffer bounds the retained event history (default 1024).
	EventBuffer int

	// FlightEvery throttles flight-recorder mirroring: every FlightEvery-th
	// heartbeat round, the supervisor dumps each live node's flight ring (the
	// proxy's FLIGHT verb plus the co-located data provider's binary sibling)
	// and retains the snapshot. When the failure detector confirms a death,
	// the node's last snapshot is archived — the post-mortem of its final
	// spans, served under FLIGHT <node>. Default 1 (every round); 0 uses the
	// default, negative disables mirroring.
	FlightEvery int

	// Obs is the metrics registry the supervisor's instrumentation records
	// into (heartbeat RTT, MTTR, work lost, Young/Daly interval, dropped
	// events). Nil means obs.Default.
	Obs *obs.Registry

	// Health, when set, turns the supervisor into the cluster health plane
	// (internal/health): every Health.Every-th heartbeat round it federates
	// each live node's metrics (proxy text verb + data provider binary op,
	// plus Health.RepairAddr) into Obs under node= labels, samples Obs's
	// history ring, and evaluates the SLO rules — firings and resolutions
	// become events and health_alert_active gauges, and the supervisor's own
	// METRICS/HISTORY/HEALTH endpoint then answers for the whole fleet.
	Health *health.Config
}

func (c Config) withDefaults() Config {
	if c.HeartbeatEvery <= 0 {
		c.HeartbeatEvery = 50 * time.Millisecond
	}
	if c.PingTimeout <= 0 {
		// Wider than the ping period: a loaded machine must miss several
		// beats in a row, not merely respond slowly, before recovery fires.
		c.PingTimeout = 4 * c.HeartbeatEvery
	}
	if c.SuspectAfter < 1 {
		c.SuspectAfter = 3
	}
	if c.MTBF <= 0 {
		c.MTBF = time.Hour
	}
	if c.InitialCkptCost <= 0 {
		c.InitialCkptCost = time.Second
	}
	if c.CostSmoothing <= 0 || c.CostSmoothing > 1 {
		c.CostSmoothing = 0.3
	}
	if c.MinInterval <= 0 {
		c.MinInterval = 100 * time.Millisecond
	}
	if c.MaxInterval <= 0 {
		c.MaxInterval = time.Hour
	}
	if c.MaxRestartRetries < 1 {
		c.MaxRestartRetries = 5
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 50 * time.Millisecond
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = 2 * time.Second
	}
	if c.FlightEvery == 0 {
		c.FlightEvery = 1
	}
	return c
}

// Metrics is the supervisor's cumulative accounting. MTTR (mean time to
// repair: failure detection to resumed deployment) is a first-class output,
// alongside how much computed work rollbacks discarded.
type Metrics struct {
	HeartbeatsSent   uint64
	HeartbeatsMissed uint64
	FailuresDetected int
	Recoveries       int
	RestartAttempts  int
	RedeployedVMs    int
	InPlaceVMs       int

	CheckpointsInitiated int
	// CheckpointsLocal counts checkpoints that reached the locally-safe
	// watermark (multilevel deployments only); CheckpointsPromoted counts
	// recovery-time promotions of a locally-safe checkpoint to durable via
	// partner/owner tier drains.
	CheckpointsLocal    int
	CheckpointsPromoted int
	CheckpointsDurable  int
	CheckpointsFailed   int

	// Storage-plane repair accounting (Config.Repair).
	StorageRepairs   int           // triggered repair passes completed
	ReplicasRestored int           // replica bodies re-placed by those passes
	BytesRestored    uint64        // payload bytes re-replicated
	LastStorageMTTR  time.Duration // failure confirmation -> clean scrub

	LastMTTR  time.Duration
	TotalMTTR time.Duration
	MaxMTTR   time.Duration
	WorkLost  time.Duration
}

// MeanMTTR returns the mean time-to-repair across recoveries.
func (m Metrics) MeanMTTR() time.Duration {
	if m.Recoveries == 0 {
		return 0
	}
	return m.TotalMTTR / time.Duration(m.Recoveries)
}

// Supervisor is the autonomous checkpoint-restart controller of one
// deployment.
type Supervisor struct {
	cl  *cloud.Cloud
	cfg Config
	log *EventLog
	reg *obs.Registry

	mu          sync.Mutex
	dep         *cloud.Deployment
	gen         int // deployment generation; bumps on every recovery
	det         *detector
	ckptCost    float64   // EWMA of observed checkpoint cost, seconds (time-to-local on tiered deployments, time-to-durable otherwise)
	lastDurable time.Time // when the newest durable checkpoint completed
	metrics     Metrics

	// Multilevel bookkeeping. localSeqs records, per locally-safe checkpoint
	// of the *current* generation, each member's capture sequence number —
	// the input a promotion drain (proxy DRAINFOR against the member's node
	// or its partner) needs. Cleared when the generation bumps: checkpoint
	// ids restart per deployment. backlogs mirrors each live node's
	// local-tier drain backlog, refreshed on heartbeat rounds.
	localSeqs map[int]map[string]uint64
	backlogs  map[string]NodeBacklog

	// An exhausted recovery episode leaves the deployment down; the loop
	// starts a fresh episode once retryRecoveryAt passes. downSince anchors
	// the outage: MTTR spans from the first detection to the restart that
	// finally succeeds, across however many episodes that takes.
	pendingRecovery bool
	retryRecoveryAt time.Time
	downSince       time.Time

	// repairInFlight serializes triggered storage-repair passes; a failure
	// confirmed while one is running sets repairPending, and the finishing
	// pass immediately re-kicks — a second failure's lost replicas are
	// never silently dropped.
	repairInFlight bool
	repairPending  bool

	// Flight-recorder mirroring (flight.go): the last dump fetched off each
	// node, final once the node's death is confirmed. Guarded by its own
	// mutex — mirroring runs during heartbeat rounds and FLIGHT <node> reads
	// come in over the wire; neither should contend with the control loop.
	flightMu sync.Mutex
	flights  map[string]FlightDump
	hbRounds int // heartbeat rounds run; gates mirroring via FlightEvery

	// Health plane (health.go in this package): the federation scraper and
	// SLO engine, nil without Config.Health.
	fed    *health.Federator
	engine *health.Engine
}

// New builds a supervisor for the deployment. Run starts the control loop.
func New(cl *cloud.Cloud, dep *cloud.Deployment, cfg Config) *Supervisor {
	cfg = cfg.withDefaults()
	reg := cfg.Obs
	if reg == nil {
		reg = obs.Default
	}
	s := &Supervisor{
		cl:        cl,
		cfg:       cfg,
		log:       newEventLog(cfg.EventBuffer),
		reg:       reg,
		dep:       dep,
		det:       newDetector(cfg.SuspectAfter),
		flights:   make(map[string]FlightDump),
		localSeqs: make(map[int]map[string]uint64),
		backlogs:  make(map[string]NodeBacklog),
	}
	dropped := reg.Counter("supervisor_events_dropped_total")
	s.log.onDrop = dropped.Inc
	if cfg.Health != nil {
		s.startHealth(cfg.Health)
	}
	return s
}

// Events returns the supervisor's event stream.
func (s *Supervisor) Events() *EventLog { return s.log }

// Deployment returns the current deployment and its generation; the
// generation bumps every time a recovery replaces the instance set, so a
// workload can detect that it must re-bind to the new instances.
func (s *Supervisor) Deployment() (*cloud.Deployment, int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dep, s.gen
}

// Metrics returns a snapshot of the cumulative accounting.
func (s *Supervisor) Metrics() Metrics {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.metrics
}

// NodeBacklog is one node's local-tier drain backlog, split into the node's
// own staged captures and the partner replicas it holds for its neighbor.
type NodeBacklog struct {
	Own     localtier.Backlog
	Partner localtier.Backlog
}

// Backlogs returns the latest drain backlog mirrored off each live node of
// the local tier, keyed by node name. Empty on non-tiered deployments.
func (s *Supervisor) Backlogs() map[string]NodeBacklog {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]NodeBacklog, len(s.backlogs))
	for name, b := range s.backlogs {
		out[name] = b
	}
	return out
}

// tiered reports whether the deployment runs on local-tier nodes — the
// multilevel two-watermark protocol only applies then.
func (s *Supervisor) tiered(dep *cloud.Deployment) bool {
	return len(dep.Instances) > 0 && dep.Instances[0].Node.Stage() != nil
}

// observeCkptCostLocked folds one checkpoint-cost observation into the EWMA
// feeding the Young/Daly interval. Caller holds s.mu.
func (s *Supervisor) observeCkptCostLocked(cost time.Duration) {
	if s.ckptCost == 0 {
		s.ckptCost = cost.Seconds()
	} else {
		a := s.cfg.CostSmoothing
		s.ckptCost = a*cost.Seconds() + (1-a)*s.ckptCost
	}
}

// Interval returns the checkpoint interval currently in effect: the
// Young/Daly optimum for the observed checkpoint cost and the configured
// MTBF, clamped to [MinInterval, MaxInterval].
func (s *Supervisor) Interval() time.Duration {
	s.mu.Lock()
	cost := s.ckptCost
	s.mu.Unlock()
	if cost == 0 {
		cost = s.cfg.InitialCkptCost.Seconds()
	}
	t := simcloud.OptimalInterval(cost, s.cfg.MTBF.Seconds())
	d := time.Duration(t * float64(time.Second))
	if d < s.cfg.MinInterval {
		d = s.cfg.MinInterval
	}
	if d > s.cfg.MaxInterval {
		d = s.cfg.MaxInterval
	}
	s.reg.Gauge("supervisor_ckpt_interval_ns").Set(int64(d))
	return d
}

// Run drives the control loop — heartbeats, Daly-interval checkpoints,
// recoveries — until ctx is cancelled. It returns nil on cancellation;
// individual failures are handled (and evented), not returned.
func (s *Supervisor) Run(ctx context.Context) error {
	hb := time.NewTicker(s.cfg.HeartbeatEvery)
	defer hb.Stop()
	ck := time.NewTimer(s.Interval())
	defer ck.Stop()
	for {
		select {
		case <-ctx.Done():
			return nil
		case <-hb.C:
			failed := s.heartbeat(ctx)
			s.mu.Lock()
			retry := s.pendingRecovery && time.Now().After(s.retryRecoveryAt)
			s.mu.Unlock()
			if len(failed) > 0 || retry {
				s.recover(ctx, failed) //nolint:errcheck // evented; the loop keeps running
			}
		case <-ck.C:
			s.CheckpointNow(ctx) //nolint:errcheck // evented; failures surface via heartbeats too
			ck.Reset(s.Interval())
		}
	}
}

// heartbeat pings every non-failed node of the cloud — not just the ones
// hosting instances: a node may carry only a data provider, and its death
// still matters (placement must skip it, Prune must not sweep through it).
// Pings run concurrently, so one round costs one PingTimeout no matter how
// many nodes hang. It returns the names of nodes the detector confirmed
// failed this round.
func (s *Supervisor) heartbeat(ctx context.Context) []string {
	var nodes []*cloud.Node
	for _, node := range s.cl.Nodes() {
		if !node.Failed() {
			nodes = append(nodes, node)
		}
	}
	errs := make([]error, len(nodes))
	var wg sync.WaitGroup
	for i, node := range nodes {
		wg.Add(1)
		go func(i int, node *cloud.Node) {
			defer wg.Done()
			pctx, cancel := context.WithTimeout(ctx, s.cfg.PingTimeout)
			defer cancel()
			sw := obs.StartTimer()
			_, errs[i] = proxy.Ping(pctx, s.cl.Network(), node.ProxyAddr)
			if errs[i] == nil {
				sw.ObserveInto(s.reg.Histogram("supervisor_heartbeat_rtt_ns"))
				// Piggyback the local-tier drain backlog on the liveness
				// round: one extra cheap call per beat keeps the per-node
				// backlog view (STATUS, Backlogs) current without a second
				// survey loop.
				if node.Stage() != nil {
					if own, partner, berr := proxy.Backlog(pctx, s.cl.Network(), node.ProxyAddr); berr == nil {
						s.mu.Lock()
						s.backlogs[node.Name] = NodeBacklog{Own: own, Partner: partner}
						s.mu.Unlock()
						s.reg.Gauge("supervisor_drain_backlog_chunks", obs.L("node", node.Name)).Set(int64(own.Chunks + partner.Chunks))
						s.reg.Gauge("supervisor_drain_backlog_bytes", obs.L("node", node.Name)).Set(int64(own.Bytes + partner.Bytes))
					}
				}
			}
		}(i, node)
	}
	wg.Wait()
	// Mirror flight rings off the nodes that answered, before judging the
	// round: the snapshot taken now is the one a confirmation this round
	// would archive as the node's post-mortem.
	s.mu.Lock()
	s.hbRounds++
	rounds := s.hbRounds
	mirror := s.cfg.FlightEvery > 0 && rounds%s.cfg.FlightEvery == 0
	s.mu.Unlock()
	if mirror {
		s.mirrorFlights(ctx, nodes, errs)
	}
	if s.fed != nil {
		every := s.cfg.Health.Every
		if every < 1 {
			every = 1
		}
		if rounds%every == 0 {
			s.healthRound(ctx, nodes)
		}
	}
	var confirmed []string
	for i, node := range nodes {
		err := errs[i]
		s.mu.Lock()
		s.metrics.HeartbeatsSent++
		s.reg.Counter("supervisor_heartbeats_total").Inc()
		if err != nil {
			s.metrics.HeartbeatsMissed++
			s.reg.Counter("supervisor_heartbeats_missed_total").Inc()
		}
		suspected, conf := s.det.observe(node.Name, err == nil)
		s.mu.Unlock()
		if suspected {
			s.log.append(Event{Type: EventNodeSuspected, Node: node.Name, Detail: fmt.Sprintf("ping: %v", err)})
		}
		if conf {
			confirmed = append(confirmed, node.Name)
			s.archiveFlight(node.Name)
		}
	}
	return confirmed
}

// CheckpointNow initiates a global checkpoint of the current deployment:
// every member captures its dirty chunks (the VM resumes immediately) and
// the checkpoint is recorded provisionally; a background watcher resolves
// the commit handles and promotes the checkpoint to durable. It returns the
// provisional checkpoint id.
func (s *Supervisor) CheckpointNow(ctx context.Context) (int, error) {
	s.mu.Lock()
	dep, gen := s.dep, s.gen
	s.mu.Unlock()
	sw := obs.StartTimer()

	type member struct {
		inst   *cloud.Instance
		handle uint64
	}
	members := make([]member, len(dep.Instances))
	errs := make([]error, len(dep.Instances))
	var wg sync.WaitGroup
	for i, inst := range dep.Instances {
		wg.Add(1)
		go func(i int, inst *cloud.Instance) {
			defer wg.Done()
			h, err := inst.Proxy.RequestCheckpointAsync(ctx)
			members[i] = member{inst: inst, handle: h}
			errs[i] = err
		}(i, inst)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			s.mu.Lock()
			s.metrics.CheckpointsFailed++
			s.mu.Unlock()
			s.log.append(Event{Type: EventCheckpointFailed, Node: members[i].inst.Node.Name,
				Detail: fmt.Sprintf("initiate %s: %v", members[i].inst.VMID, err)})
			return 0, err
		}
	}

	id := s.cl.RecordPendingCheckpoint(dep)
	s.mu.Lock()
	s.metrics.CheckpointsInitiated++
	s.mu.Unlock()
	s.log.append(Event{Type: EventCheckpointInitiated, Ckpt: id,
		Detail: fmt.Sprintf("%d members, commits in flight", len(members))})

	go func() {
		// Phase A (multilevel deployments): wait for every member's capture
		// to reach its node's fast tier and partner replica, then mark the
		// locally-safe watermark. The *local* cost is what feeds the
		// Young/Daly EWMA — the job only ever waits for the local tier, so
		// the cadence must track local-tier speed, not remote-plane
		// bandwidth.
		tiered := s.tiered(dep)
		localOK := false
		if tiered {
			seqs := make(map[string]uint64, len(members))
			localOK = true
			for _, m := range members {
				seq, err := m.inst.Proxy.WaitCheckpointLocal(ctx, m.handle)
				if err != nil {
					s.log.append(Event{Type: EventCheckpointFailed, Ckpt: id, Node: m.inst.Node.Name,
						Detail: fmt.Sprintf("local ack %s: %v", m.inst.VMID, err)})
					localOK = false
					break
				}
				seqs[m.inst.VMID] = seq
			}
			if localOK {
				if err := dep.MarkLocallySafe(id); err != nil {
					s.log.append(Event{Type: EventCheckpointFailed, Ckpt: id, Detail: err.Error()})
				} else {
					localCost := sw.Elapsed()
					s.mu.Lock()
					if s.gen == gen {
						s.observeCkptCostLocked(localCost)
						s.localSeqs[id] = seqs
						s.metrics.CheckpointsLocal++
					}
					s.mu.Unlock()
					s.reg.Counter("supervisor_ckpt_local_total").Inc()
					s.reg.Histogram("supervisor_ckpt_local_cost_ns").Observe(uint64(localCost))
					s.log.append(Event{Type: EventCheckpointLocal, Ckpt: id,
						Detail: fmt.Sprintf("local-cost=%s interval=%s", localCost.Round(time.Microsecond), s.Interval().Round(time.Millisecond))})
				}
			}
		}
		// Phase B: wait for the drain to publish every member's snapshot to
		// the remote plane. A member whose node died after the local ack is
		// not fatal: its partner holds the replica — drain it on the dead
		// member's behalf.
		for _, m := range members {
			ref, err := m.inst.Proxy.WaitCheckpoint(ctx, m.handle)
			if err != nil && tiered && localOK {
				ref, err = s.drainSurvivor(ctx, m.inst, id)
			}
			if err != nil {
				s.mu.Lock()
				s.metrics.CheckpointsFailed++
				s.mu.Unlock()
				s.log.append(Event{Type: EventCheckpointFailed, Ckpt: id, Node: m.inst.Node.Name,
					Detail: fmt.Sprintf("commit %s: %v", m.inst.VMID, err)})
				return
			}
			if err := dep.ResolveSnapshot(id, m.inst.VMID, ref); err != nil {
				s.log.append(Event{Type: EventCheckpointFailed, Ckpt: id, Detail: err.Error()})
				return
			}
		}
		if err := dep.MarkDurable(id); err != nil {
			s.log.append(Event{Type: EventCheckpointFailed, Ckpt: id, Detail: err.Error()})
			return
		}
		cost := sw.Elapsed()
		s.mu.Lock()
		if s.gen != gen {
			// A recovery replaced the deployment while this checkpoint was
			// publishing: the record just promoted belongs to the discarded
			// incarnation and the active deployment's watermark never
			// includes it. Don't let the phantom into the durable
			// accounting or the lost-work anchor.
			s.mu.Unlock()
			s.log.append(Event{Type: EventCheckpointFailed, Ckpt: id,
				Detail: "published into a deployment already replaced by recovery"})
			return
		}
		if !localOK {
			// Untier(ed) deployments price the full time-to-durable; tiered
			// ones already folded the local cost in phase A.
			s.observeCkptCostLocked(cost)
		}
		s.lastDurable = time.Now()
		s.metrics.CheckpointsDurable++
		delete(s.localSeqs, id) // durable: no promotion drain will need it
		s.mu.Unlock()
		s.reg.Counter("supervisor_ckpt_durable_total").Inc()
		s.reg.Histogram("supervisor_ckpt_cost_ns").Observe(uint64(cost))
		s.log.append(Event{Type: EventCheckpointDurable, Ckpt: id,
			Detail: fmt.Sprintf("cost=%s interval=%s", cost.Round(time.Microsecond), s.Interval().Round(time.Millisecond))})
	}()
	return id, nil
}

// drainSurvivor publishes a member's staged captures for the locally-safe
// checkpoint ckptID from wherever a copy survives: the member's own node
// first (restart-in-place — the tier outlives the halted mirror module),
// then the node's partner replica. It returns the snapshot the drain chain
// reached.
func (s *Supervisor) drainSurvivor(ctx context.Context, inst *cloud.Instance, ckptID int) (cloud.SnapshotRef, error) {
	s.mu.Lock()
	seq, ok := s.localSeqs[ckptID][inst.VMID]
	s.mu.Unlock()
	if !ok {
		return cloud.SnapshotRef{}, fmt.Errorf("supervisor: no local capture sequence recorded for %s at ckpt %d", inst.VMID, ckptID)
	}
	var addrs []string
	if !inst.Node.Failed() {
		addrs = append(addrs, inst.Node.ProxyAddr)
	}
	if inst.Node.PartnerAddr != "" {
		addrs = append(addrs, inst.Node.PartnerAddr)
	}
	err := fmt.Errorf("supervisor: no surviving copy of %s seq %d", inst.VMID, seq)
	for _, addr := range addrs {
		var ref cloud.SnapshotRef
		ref, err = proxy.DrainFor(ctx, s.cl.Network(), addr, inst.VMID, seq)
		if err == nil {
			return ref, nil
		}
	}
	return cloud.SnapshotRef{}, err
}

// promoteLocallySafe tries to make the newest locally-safe checkpoint the
// rollback target: every member's staged captures are drained to the remote
// plane — from the member's own tier when its node survived, or from the
// partner replica when it died — and the checkpoint is marked durable.
// Failure is not fatal; the rollback planner falls back to the existing
// durable watermark, so a locally-safe-only checkpoint is never rolled back
// to unless every member's copy was actually publishable.
func (s *Supervisor) promoteLocallySafe(ctx context.Context, dep *cloud.Deployment) {
	if !s.tiered(dep) {
		return
	}
	lcp, ok := dep.LatestLocallySafeCheckpoint()
	if !ok || lcp.Durable {
		return
	}
	for _, inst := range dep.Instances {
		if _, done := lcp.Snapshots[inst.VMID]; done {
			continue // this member's drain already published
		}
		ref, err := s.drainSurvivor(ctx, inst, lcp.ID)
		if err != nil {
			s.log.append(Event{Type: EventCheckpointFailed, Ckpt: lcp.ID, Node: inst.Node.Name,
				Detail: fmt.Sprintf("promotion drain %s: %v", inst.VMID, err)})
			return
		}
		if err := dep.ResolveSnapshot(lcp.ID, inst.VMID, ref); err != nil {
			s.log.append(Event{Type: EventCheckpointFailed, Ckpt: lcp.ID, Detail: err.Error()})
			return
		}
	}
	if err := dep.MarkDurable(lcp.ID); err != nil {
		s.log.append(Event{Type: EventCheckpointFailed, Ckpt: lcp.ID, Detail: err.Error()})
		return
	}
	s.mu.Lock()
	s.metrics.CheckpointsPromoted++
	s.metrics.CheckpointsDurable++
	s.mu.Unlock()
	s.reg.Counter("supervisor_ckpt_promoted_total").Inc()
	s.log.append(Event{Type: EventCheckpointPromoted, Ckpt: lcp.ID,
		Detail: "locally-safe checkpoint drained to the remote plane for rollback"})
}

// recover handles one confirmed failure: mark the nodes failed with the
// middleware, kill their instances, plan a rollback to the durability
// watermark, and execute the restart with bounded retries and exponential
// backoff. On success the supervisor swaps in the new deployment and bumps
// the generation.
func (s *Supervisor) recover(ctx context.Context, failed []string) error {
	s.mu.Lock()
	dep := s.dep
	lastDurable := s.lastDurable
	if s.downSince.IsZero() {
		s.downSince = time.Now()
	}
	downSince := s.downSince
	s.metrics.FailuresDetected += len(failed)
	s.mu.Unlock()
	s.reg.Counter("supervisor_failures_detected_total").Add(uint64(len(failed)))

	for _, name := range failed {
		s.log.append(Event{Type: EventFailureDetected, Node: name,
			Detail: fmt.Sprintf("%d consecutive heartbeats missed", s.cfg.SuspectAfter)})
		if err := s.cl.FailNode(ctx, name); err != nil {
			s.log.append(Event{Type: EventFailureDetected, Node: name, Detail: "fail-stop: " + err.Error()})
		}
	}
	dead := s.cl.KillDeploymentInstancesOn(dep)

	// The failed nodes' co-located data providers are gone: every chunk
	// replica they held is lost. Kick the storage plane's self-healing in
	// the background — re-replication proceeds while (and after) the
	// compute plane restarts.
	if len(failed) > 0 {
		s.kickRepair(ctx, fmt.Sprintf("data providers of %v lost", failed))
	}

	// A failed node that hosted no member (a data-provider-only node, or a
	// spare) needs no rollback: FailNode already took it out of placement
	// and the provider rotation, and the job never stopped. Only roll back
	// when a member actually died.
	memberDown := false
	for _, inst := range dep.Instances {
		if inst.Node.Failed() || inst.VM.State() == vm.Stopped {
			memberDown = true
			break
		}
	}
	if !memberDown {
		s.mu.Lock()
		if !s.pendingRecovery {
			s.downSince = time.Time{}
		}
		s.mu.Unlock()
		for _, name := range failed {
			s.log.append(Event{Type: EventNodeRetired, Node: name,
				Detail: "hosted no members; removed from placement, no rollback needed"})
		}
		return nil
	}

	// Multilevel promotion: the newest locally-safe checkpoint may be ahead
	// of the durable watermark — try to drain it to the remote plane first,
	// so the rollback discards as little work as the local tier allows.
	s.promoteLocallySafe(ctx, dep)

	cp, ok := dep.LatestDurableCheckpoint()
	if !ok {
		// Nothing to roll back to *yet* — an in-flight checkpoint may still
		// become durable (its surviving members' commits resolve on their
		// own). Re-arm rather than giving up, like an exhausted episode.
		s.mu.Lock()
		s.pendingRecovery = true
		s.retryRecoveryAt = time.Now().Add(s.cfg.BackoffMax)
		s.mu.Unlock()
		s.log.append(Event{Type: EventRecoveryFailed,
			Detail: fmt.Sprintf("%s (new episode in %s)", ErrNoDurableCheckpoint, s.cfg.BackoffMax)})
		return ErrNoDurableCheckpoint
	}
	// Work lost = computation discarded by the rollback: from the rollback
	// target becoming durable until the failure took the deployment down.
	var workLost time.Duration
	if !lastDurable.IsZero() && downSince.After(lastDurable) {
		workLost = downSince.Sub(lastDurable)
	}
	mode := "full"
	if s.cfg.PartialRestart {
		mode = "partial"
	}
	s.log.append(Event{Type: EventRollbackPlanned, Ckpt: cp.ID, WorkLost: workLost,
		Detail: fmt.Sprintf("watermark=%d dead=%v mode=%s", dep.DurableWatermark(), dead, mode)})

	backoff := s.cfg.BackoffBase
	var lastErr error
	for attempt := 1; attempt <= s.cfg.MaxRestartRetries; attempt++ {
		s.mu.Lock()
		s.metrics.RestartAttempts++
		s.mu.Unlock()
		s.log.append(Event{Type: EventRestartAttempt, Ckpt: cp.ID, Attempt: attempt})

		var newDep *cloud.Deployment
		var stats cloud.RestartStats
		var err error
		if s.cfg.PartialRestart {
			newDep, stats, err = s.cl.PartialRestart(ctx, dep, cp.ID)
		} else {
			newDep, err = s.cl.Restart(ctx, dep, cp.ID)
			if err == nil {
				stats = cloud.RestartStats{Redeployed: len(newDep.Instances)}
			}
		}
		if err == nil {
			// MTTR spans the whole outage, prior exhausted episodes and
			// inter-episode waits included.
			mttr := time.Since(downSince)
			s.mu.Lock()
			s.dep = newDep
			s.gen++
			s.pendingRecovery = false
			s.downSince = time.Time{}
			// Checkpoint ids restart with the new deployment: stale capture
			// sequences must not alias the new incarnation's checkpoints.
			s.localSeqs = make(map[int]map[string]uint64)
			for _, name := range failed {
				s.det.forget(name)
				delete(s.backlogs, name)
			}
			// Work since the resumed checkpoint is what the next failure
			// would lose.
			s.lastDurable = time.Now()
			s.metrics.Recoveries++
			s.metrics.RedeployedVMs += stats.Redeployed
			s.metrics.InPlaceVMs += stats.InPlace
			s.metrics.LastMTTR = mttr
			s.metrics.TotalMTTR += mttr
			if mttr > s.metrics.MaxMTTR {
				s.metrics.MaxMTTR = mttr
			}
			s.metrics.WorkLost += workLost
			s.mu.Unlock()
			s.reg.Counter("supervisor_recoveries_total").Inc()
			s.reg.Histogram("supervisor_mttr_ns").Observe(uint64(mttr))
			s.reg.Gauge("supervisor_mttr_last_ns").Set(int64(mttr))
			s.reg.Counter("supervisor_work_lost_ns_total").Add(uint64(workLost))
			s.log.append(Event{Type: EventRestartDone, Ckpt: cp.ID, Attempt: attempt, MTTR: mttr,
				Detail: fmt.Sprintf("mode=%s redeployed=%d in-place=%d", mode, stats.Redeployed, stats.InPlace)})
			return nil
		}
		lastErr = err
		s.log.append(Event{Type: EventRestartAttempt, Ckpt: cp.ID, Attempt: attempt, Detail: "failed: " + err.Error()})
		// A retry may be failing because more nodes died mid-restart: sweep
		// once so placement avoids them on the next attempt.
		s.sweepFailures(ctx, dep)
		select {
		case <-ctx.Done():
			s.log.append(Event{Type: EventRecoveryFailed, Ckpt: cp.ID, Detail: ctx.Err().Error()})
			return ctx.Err()
		case <-time.After(backoff):
		}
		backoff *= 2
		if backoff > s.cfg.BackoffMax {
			backoff = s.cfg.BackoffMax
		}
	}
	// The deployment is still down: schedule a fresh episode rather than
	// giving up for good — transient conditions (a provider mid-recovery, a
	// second failure racing the restart) clear with time.
	s.mu.Lock()
	s.pendingRecovery = true
	s.retryRecoveryAt = time.Now().Add(s.cfg.BackoffMax)
	s.mu.Unlock()
	s.log.append(Event{Type: EventRecoveryFailed, Ckpt: cp.ID,
		Detail: fmt.Sprintf("%d attempts (new episode in %s): %v", s.cfg.MaxRestartRetries, s.cfg.BackoffMax, lastErr)})
	return lastErr
}

// kickRepair starts one background storage-repair pass (scrub +
// re-replication) if Config.Repair is set and none is already running. The
// storage MTTR — from this trigger to a clean scrub — is metered and
// evented.
func (s *Supervisor) kickRepair(ctx context.Context, reason string) {
	if s.cfg.Repair == nil {
		return
	}
	s.mu.Lock()
	if s.repairInFlight {
		// A pass is already surveying a membership that may predate this
		// failure: remember to run another one the moment it finishes.
		s.repairPending = true
		s.mu.Unlock()
		return
	}
	s.repairInFlight = true
	s.mu.Unlock()
	s.log.append(Event{Type: EventRepairStarted, Detail: reason})
	go func() {
		start := time.Now()
		rep, err := s.cfg.Repair.Repair(ctx)
		elapsed := time.Since(start)
		s.mu.Lock()
		s.repairInFlight = false
		pending := s.repairPending
		s.repairPending = false
		s.metrics.StorageRepairs++
		s.metrics.ReplicasRestored += rep.ReplicasRestored
		s.metrics.BytesRestored += rep.BytesRestored
		s.metrics.LastStorageMTTR = elapsed
		s.reg.Counter("supervisor_storage_repairs_total").Inc()
		s.reg.Counter("supervisor_replicas_restored_total").Add(uint64(rep.ReplicasRestored))
		s.reg.Counter("supervisor_bytes_restored_total").Add(rep.BytesRestored)
		s.reg.Histogram("supervisor_storage_mttr_ns").Observe(uint64(elapsed))
		s.mu.Unlock()
		switch {
		case err != nil:
			s.log.append(Event{Type: EventRepairFailed, Detail: err.Error()})
		case !rep.Post.Clean():
			s.log.append(Event{Type: EventRepairFailed,
				Detail: fmt.Sprintf("did not converge: %s", rep.Post)})
		default:
			s.log.append(Event{Type: EventRepairDone, MTTR: elapsed,
				Detail: fmt.Sprintf("restored %d replicas / %d bytes in %d passes",
					rep.ReplicasRestored, rep.BytesRestored, rep.Passes)})
		}
		if pending && ctx.Err() == nil {
			s.kickRepair(ctx, "failure confirmed during the previous repair pass")
		}
	}()
}

// sweepFailures pings every node of the deployment once and immediately
// fail-stops the unreachable ones — used between restart attempts, where a
// failure is already in progress and waiting out the full suspicion window
// would only stretch the MTTR.
func (s *Supervisor) sweepFailures(ctx context.Context, dep *cloud.Deployment) {
	seen := make(map[string]bool)
	for _, inst := range dep.Instances {
		node := inst.Node
		if seen[node.Name] || node.Failed() {
			continue
		}
		seen[node.Name] = true
		pctx, cancel := context.WithTimeout(ctx, s.cfg.PingTimeout)
		_, err := proxy.Ping(pctx, s.cl.Network(), node.ProxyAddr)
		cancel()
		if err == nil {
			continue
		}
		s.mu.Lock()
		s.metrics.FailuresDetected++
		s.det.forget(node.Name)
		s.mu.Unlock()
		s.reg.Counter("supervisor_failures_detected_total").Inc()
		s.log.append(Event{Type: EventFailureDetected, Node: node.Name, Detail: "died during recovery"})
		if ferr := s.cl.FailNode(ctx, node.Name); ferr != nil {
			s.log.append(Event{Type: EventFailureDetected, Node: node.Name, Detail: "fail-stop: " + ferr.Error()})
		}
		s.cl.KillDeploymentInstancesOn(dep)
	}
}
