package supervisor

import (
	"fmt"
	"strings"
	"sync"
	"time"
)

// EventType classifies one entry of the supervisor's event stream.
type EventType string

// The event stream vocabulary: the full life of a failure, from first
// missed heartbeat to recovered deployment, plus the checkpoint cadence.
const (
	EventNodeSuspected       EventType = "node-suspected"
	EventFailureDetected     EventType = "failure-detected"
	EventNodeRetired         EventType = "node-retired"
	EventCheckpointInitiated EventType = "checkpoint-initiated"
	// EventCheckpointLocal marks the first watermark of multilevel
	// checkpointing: every member's capture is staged in its node's local
	// tier and replicated to the partner. The checkpoint is safe against any
	// single node loss but not yet a rollback target.
	EventCheckpointLocal   EventType = "checkpoint-locally-safe"
	EventCheckpointDurable EventType = "checkpoint-durable"
	// EventCheckpointPromoted records a recovery-time promotion: a
	// locally-safe checkpoint newer than the durable watermark was drained to
	// the remote plane (from the members' own tiers or their partners'
	// replicas) and became the rollback target.
	EventCheckpointPromoted EventType = "checkpoint-promoted"
	EventCheckpointFailed   EventType = "checkpoint-failed"
	EventRollbackPlanned    EventType = "rollback-planned"
	EventRestartAttempt     EventType = "restart-attempt"
	EventRestartDone        EventType = "restart-done"
	EventRecoveryFailed     EventType = "recovery-failed"

	// Storage-plane self-healing (Config.Repair): a confirmed node failure
	// triggers a background scrub + re-replication pass; repair-done's MTTR
	// field carries the storage MTTR (trigger to clean scrub).
	EventRepairStarted EventType = "storage-repair-started"
	EventRepairDone    EventType = "storage-repair-done"
	EventRepairFailed  EventType = "storage-repair-failed"

	// EventFlightArchived records that a confirmed-dead node's last mirrored
	// flight-recorder dump was frozen as its post-mortem (FLIGHT <node>).
	EventFlightArchived EventType = "flight-archived"

	// Health plane (Config.Health): an SLO rule evaluated over the federated
	// history ring crossed into (or back out of) breach with hysteresis.
	EventAlertFiring   EventType = "alert-firing"
	EventAlertResolved EventType = "alert-resolved"
)

// Event is one structured entry of the supervisor's event stream.
type Event struct {
	Seq  int
	Time time.Time
	Type EventType

	Node    string        // the node concerned (failure events)
	Ckpt    int           // the checkpoint concerned (checkpoint/rollback events)
	Attempt int           // restart attempt number (restart events)
	MTTR    time.Duration // time from detection to resumed job (restart-done)
	// WorkLost estimates the computation discarded by the rollback: the time
	// elapsed since the rollback target became durable (rollback-planned).
	WorkLost time.Duration
	Detail   string
}

// String renders the event as one line, the format the EVENTS endpoint and
// blobcr-ctl print.
func (e Event) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "#%04d %s %s", e.Seq, e.Time.Format("15:04:05.000"), e.Type)
	if e.Node != "" {
		fmt.Fprintf(&b, " node=%s", e.Node)
	}
	if e.Ckpt != 0 {
		fmt.Fprintf(&b, " ckpt=%d", e.Ckpt)
	}
	if e.Attempt != 0 {
		fmt.Fprintf(&b, " attempt=%d", e.Attempt)
	}
	if e.MTTR != 0 {
		fmt.Fprintf(&b, " mttr=%s", e.MTTR.Round(time.Microsecond))
	}
	if e.WorkLost != 0 {
		fmt.Fprintf(&b, " work-lost=%s", e.WorkLost.Round(time.Microsecond))
	}
	if e.Detail != "" {
		fmt.Fprintf(&b, " %s", e.Detail)
	}
	return b.String()
}

// defaultEventBuffer bounds the retained event history.
const defaultEventBuffer = 1024

// EventLog is the supervisor's bounded event history plus live
// subscriptions. The history is a fixed-capacity ring allocated once at
// construction: a long-running supervise loop cannot grow memory without
// limit, and once the ring is full every append overwrites the oldest
// retained event. Overwrites are counted — Dropped() and the
// supervisor_events_dropped_total metric make the loss visible, and EVENTS
// consumers can detect the gap by comparing sequence numbers. Appends never
// block: a subscriber that falls behind loses events from its channel (the
// bounded history is the reliable record).
type EventLog struct {
	mu      sync.Mutex
	ring    []Event // fixed capacity, allocated once
	start   int     // index of the oldest retained event
	count   int     // retained events (≤ len(ring))
	dropped uint64  // events overwritten after the ring filled
	next    int     // next sequence number
	subs    map[int]chan Event
	nextID  int

	// onDrop, when set, is invoked (under the lock) once per overwritten
	// event; the supervisor wires it to the events-dropped counter.
	onDrop func()
}

// newEventLog returns an event log retaining up to limit events.
func newEventLog(limit int) *EventLog {
	if limit <= 0 {
		limit = defaultEventBuffer
	}
	return &EventLog{ring: make([]Event, limit), next: 1, subs: make(map[int]chan Event)}
}

// append stamps and stores the event, fanning it out to subscribers. The
// sends happen under the lock — they are non-blocking, and doing them
// inside the critical section is what keeps each subscriber's channel in
// sequence order across concurrent appenders.
func (l *EventLog) append(e Event) Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	e.Seq = l.next
	l.next++
	if e.Time.IsZero() {
		e.Time = time.Now()
	}
	if l.count == len(l.ring) {
		// Full: overwrite the oldest slot.
		l.start = (l.start + 1) % len(l.ring)
		l.count--
		l.dropped++
		if l.onDrop != nil {
			l.onDrop()
		}
	}
	l.ring[(l.start+l.count)%len(l.ring)] = e
	l.count++
	for _, ch := range l.subs {
		select {
		case ch <- e:
		default: // slow subscriber: drop, the history keeps the record
		}
	}
	return e
}

// Since returns the retained events with Seq > seq, oldest first.
func (l *EventLog) Since(seq int) []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Event, 0, l.count)
	for i := 0; i < l.count; i++ {
		e := l.ring[(l.start+i)%len(l.ring)]
		if e.Seq > seq {
			out = append(out, e)
		}
	}
	return out
}

// Dropped returns how many events have been overwritten since start: the
// count of history the ring could not retain.
func (l *EventLog) Dropped() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dropped
}

// Subscribe returns a channel receiving every event appended from now on,
// and a cancel function releasing it. The channel is buffered; a subscriber
// that stops draining loses events rather than blocking the supervisor.
func (l *EventLog) Subscribe() (<-chan Event, func()) {
	l.mu.Lock()
	defer l.mu.Unlock()
	id := l.nextID
	l.nextID++
	ch := make(chan Event, 256)
	l.subs[id] = ch
	return ch, func() {
		l.mu.Lock()
		defer l.mu.Unlock()
		delete(l.subs, id)
	}
}
