package supervisor_test

// The flight-recorder acceptance path: a provider dies unannounced, and the
// supervisor — which has been mirroring every node's flight ring during
// heartbeat rounds — archives the victim's last dump at confirmation. The
// dump must contain the provider's final group-commit spans: the post-mortem
// shows the durable work the storage engine completed just before death.

import (
	"context"
	"strings"
	"testing"
	"time"

	"blobcr/internal/blobseer"
	"blobcr/internal/cloud"
	"blobcr/internal/obs"
	"blobcr/internal/seglog"
	"blobcr/internal/supervisor"
	"blobcr/internal/vm"
)

func TestConfirmedDeathArchivesFlightDump(t *testing.T) {
	cl, err := cloud.New(cloud.Config{
		Nodes:         2,
		MetaProviders: 1,
		Replication:   2, // every chunk survives the single-node kill
		Seed:          7,
		Stores:        blobseer.SeglogStores(t.TempDir(), seglog.Options{}),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)

	// The upload spreads chunks across both co-located providers: each one's
	// segment log group-commits them, recording seglog/groupcommit spans into
	// its flight ring.
	base, err := cl.UploadBaseImage(ctx, make([]byte, 256*1024), e2eChunk)
	if err != nil {
		t.Fatal(err)
	}
	dep, err := cl.Deploy(ctx, 1, base, vm.Config{BlockSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	// Deploy-time boot reads churn the bounded flight ring; a second upload
	// makes group commits the providers' *final* durable work before death —
	// the spans the archived dump must prove were mirrored in time.
	if _, err := cl.UploadBaseImage(ctx, make([]byte, 256*1024), e2eChunk); err != nil {
		t.Fatal(err)
	}

	sup := supervisor.New(cl, dep, supervisor.Config{
		HeartbeatEvery: 2 * time.Millisecond,
		PingTimeout:    10 * time.Millisecond,
		SuspectAfter:   2,
		MinInterval:    time.Hour, // no automatic checkpoints in this test
		MaxInterval:    time.Hour,
	})
	runCtx, cancel := context.WithCancel(ctx)
	done := make(chan struct{})
	go func() {
		defer close(done)
		sup.Run(runCtx)
	}()
	t.Cleanup(func() {
		cancel()
		<-done
	})

	// The victim hosts no member: its death exercises pure detection +
	// archival, with no rollback in the way.
	member := dep.Instances[0].Node
	var victim *cloud.Node
	for _, n := range cl.Nodes() {
		if n != member {
			victim = n
		}
	}
	if victim == nil {
		t.Fatal("no non-member node to kill")
	}

	// Wait until the supervisor has mirrored the victim's ring at least once.
	waitFor(t, 10*time.Second, "first flight mirror", func() bool {
		d, ok := sup.Flight(victim.Name)
		return ok && len(d.Spans) > 0
	})

	// The node goes dark without notice.
	net := cl.Network()
	net.Partition(victim.ProxyAddr)
	net.Partition(victim.DataAddr)

	waitFor(t, 10*time.Second, "flight dump archived", func() bool {
		d, ok := sup.Flight(victim.Name)
		return ok && d.Final
	})

	dump, _ := sup.Flight(victim.Name)
	if !hasSpanNamed(dump.Spans, "seglog/groupcommit") {
		names := map[string]bool{}
		for _, s := range dump.Spans {
			names[s.Name] = true
		}
		t.Errorf("archived dump lacks the provider's group-commit spans; %d spans with names %v",
			len(dump.Spans), names)
	}

	// The archival is evented.
	archived := false
	for _, e := range sup.Events().Since(0) {
		if e.Type == supervisor.EventFlightArchived && e.Node == victim.Name {
			archived = true
		}
	}
	if !archived {
		t.Error("no flight-archived event for the dead node")
	}

	// The dump is served over the wire under FLIGHT <node>, marked FINAL.
	srv, err := sup.Serve(net, "")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := net.Call(ctx, srv.Addr(), []byte("FLIGHT "+victim.Name))
	if err != nil {
		t.Fatal(err)
	}
	head, body, _ := strings.Cut(string(resp), "\n")
	if head != "OK v1 FINAL" {
		t.Fatalf("FLIGHT %s header = %q, want OK v1 FINAL", victim.Name, head)
	}
	spans, err := obs.ParseSpans([]byte(body))
	if err != nil {
		t.Fatal(err)
	}
	if !hasSpanNamed(spans, "seglog/groupcommit") {
		t.Error("wire FLIGHT reply lacks the group-commit spans")
	}

	// Unknown nodes get a clean error, not an empty dump.
	resp, err = net.Call(ctx, srv.Addr(), []byte("FLIGHT no-such-node"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(resp), "ERR ") {
		t.Errorf("FLIGHT for unknown node returned %q, want an ERR reply", resp)
	}
}

func hasSpanNamed(spans []obs.SpanRecord, name string) bool {
	for _, s := range spans {
		if s.Name == name {
			return true
		}
	}
	return false
}

func waitFor(t *testing.T, timeout time.Duration, what string, ok func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !ok() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}
