package supervisor

import (
	"context"
	"fmt"
	"time"

	"blobcr/internal/blobseer"
	"blobcr/internal/cloud"
	"blobcr/internal/obs"
	"blobcr/internal/transport"
)

// FlightDump is one node's flight-recorder snapshot: the most recent spans
// its proxy and co-located data provider completed, mirrored off the node's
// introspection endpoints (the text FLIGHT verb and its binary sibling)
// during heartbeat rounds. A dump that survives the node's confirmed death
// is marked Final — the post-mortem record of what the node was doing in
// its last instants, available after the node itself can no longer answer.
type FlightDump struct {
	Node  string
	Taken time.Time
	Final bool // archived at the node's confirmed death
	Spans []obs.SpanRecord
}

// mirrorFlights refreshes the retained flight dump of every node that
// answered this heartbeat round. The fetches ride the round's ping contexts'
// deadline budget conceptually but run after the pings resolved, bounded by
// one PingTimeout for the whole sweep: mirroring is best-effort — a fetch
// that fails simply leaves the previous dump in place, which is exactly the
// dump a death would archive.
func (s *Supervisor) mirrorFlights(ctx context.Context, nodes []*cloud.Node, errs []error) {
	fctx, cancel := context.WithTimeout(ctx, s.cfg.PingTimeout)
	defer cancel()
	cl := &blobseer.Client{Net: s.cl.Network()}
	for i, node := range nodes {
		if errs[i] != nil {
			continue // unreachable this round; keep the last good dump
		}
		spans, err := transport.FlightSpansText(fctx, s.cl.Network(), node.ProxyAddr)
		if err != nil {
			continue
		}
		if node.DataAddr != "" {
			if ds, err := cl.RemoteFlight(fctx, node.DataAddr); err == nil {
				spans = mergeSpans(spans, ds)
			}
		}
		s.flightMu.Lock()
		s.flights[node.Name] = FlightDump{Node: node.Name, Taken: time.Now(), Spans: spans}
		s.flightMu.Unlock()
		s.reg.Counter("supervisor_flight_mirrors_total").Inc()
	}
}

// archiveFlight marks a confirmed-dead node's last mirrored dump final and
// events the archival. Called once per confirmed failure; a node with no
// mirrored dump (it died before the first mirror round reached it) archives
// an empty final dump so FLIGHT <node> still answers.
func (s *Supervisor) archiveFlight(name string) {
	s.flightMu.Lock()
	d := s.flights[name]
	d.Node = name
	d.Final = true
	if d.Taken.IsZero() {
		d.Taken = time.Now()
	}
	s.flights[name] = d
	s.flightMu.Unlock()
	s.reg.Counter("supervisor_flight_archived_total").Inc()
	age := time.Since(d.Taken).Round(time.Millisecond)
	s.log.append(Event{Type: EventFlightArchived, Node: name,
		Detail: formatFlightDetail(len(d.Spans), age)})
}

// Flight returns the retained flight dump of one node: the last mirrored
// snapshot while the node lives, the final archived one after its confirmed
// death.
func (s *Supervisor) Flight(name string) (FlightDump, bool) {
	s.flightMu.Lock()
	defer s.flightMu.Unlock()
	d, ok := s.flights[name]
	if !ok {
		return FlightDump{}, false
	}
	d.Spans = append([]obs.SpanRecord(nil), d.Spans...)
	return d, true
}

// mergeSpans concatenates two span sets, dropping duplicates by span id.
// In-process deployments may route a node's proxy and data provider to the
// same registry, so the two FLIGHT endpoints can answer overlapping rings;
// span ids are unique per process, which makes the id a safe dedup key.
func mergeSpans(a, b []obs.SpanRecord) []obs.SpanRecord {
	seen := make(map[uint64]bool, len(a))
	for _, s := range a {
		seen[s.ID] = true
	}
	out := a
	for _, s := range b {
		if !seen[s.ID] {
			out = append(out, s)
		}
	}
	return out
}

func formatFlightDetail(n int, age time.Duration) string {
	if n == 0 {
		return "no flight dump mirrored before death"
	}
	return fmt.Sprintf("archived %d spans, mirrored %s before confirmation", n, age)
}
