package supervisor

// detector is the heartbeat suspicion tracker of the failure detector: a
// node missing `threshold` consecutive pings is confirmed failed. One
// successful ping clears the suspicion — transient hiccups (a dropped
// heartbeat under load) never trigger a recovery, only a sustained silence
// does. This is the classic suspicion-based fail-stop detector: over an
// asynchronous network it cannot be both perfectly accurate and complete,
// so the threshold trades detection latency against false positives.
type detector struct {
	threshold int
	misses    map[string]int
}

func newDetector(threshold int) *detector {
	if threshold < 1 {
		threshold = 1
	}
	return &detector{threshold: threshold, misses: make(map[string]int)}
}

// observe records one ping outcome for the node. suspected reports the
// first miss of a streak; confirmed reports that the miss streak has
// reached the threshold (and resets it, so one failure is confirmed once).
func (d *detector) observe(node string, ok bool) (suspected, confirmed bool) {
	if ok {
		delete(d.misses, node)
		return false, false
	}
	d.misses[node]++
	switch {
	case d.misses[node] == 1 && d.threshold > 1:
		return true, false
	case d.misses[node] >= d.threshold:
		delete(d.misses, node)
		return d.threshold == 1, true
	default:
		return false, false
	}
}

// forget drops any suspicion state for the node (it was recovered away).
func (d *detector) forget(node string) {
	delete(d.misses, node)
}
