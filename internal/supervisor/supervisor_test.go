package supervisor_test

// End-to-end unattended recovery: with the supervisor running, nodes are
// killed (partition + VM crash — the supervisor is never told) and the job
// completes with zero manual Restart calls. One kill lands right after a
// checkpoint initiation, while the async commits may still be publishing.

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"testing"
	"time"

	"blobcr/internal/cloud"
	"blobcr/internal/supervisor"
	"blobcr/internal/vm"
)

var ctx = context.Background()

const e2eChunk = 4096

// harness is one supervised cloud under test.
type harness struct {
	t   *testing.T
	cl  *cloud.Cloud
	sup *supervisor.Supervisor

	cancel context.CancelFunc
	done   chan struct{}
}

// newHarness builds a dedup cloud, deploys instances and starts the
// supervisor loop. Automatic checkpoints are effectively disabled when
// cfg.MinInterval/MaxInterval are long; tests drive CheckpointNow at
// quiescent points for determinism.
func newHarness(t *testing.T, cfg supervisor.Config, nodes, instances int, net *gateNet) *harness {
	t.Helper()
	// Replication 3: a two-failure storm must never take out every replica
	// of a chunk (these tests run without the storage-repair plane, so no
	// re-replication happens between failures; storagerepair_test.go covers
	// the self-healing path).
	ccfg := cloud.Config{Nodes: nodes, MetaProviders: 2, Replication: 3, Dedup: true, Seed: 42}
	if net != nil {
		ccfg.Net = net
	}
	cl, err := cloud.New(ccfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	base, err := cl.UploadBaseImage(ctx, make([]byte, 512*1024), e2eChunk)
	if err != nil {
		t.Fatal(err)
	}
	dep, err := cl.Deploy(ctx, instances, base, vm.Config{BlockSize: 512, BootNoiseBytes: 8192})
	if err != nil {
		t.Fatal(err)
	}
	sup := supervisor.New(cl, dep, cfg)
	runCtx, cancel := context.WithCancel(ctx)
	h := &harness{t: t, cl: cl, sup: sup, cancel: cancel, done: make(chan struct{})}
	go func() {
		defer close(h.done)
		sup.Run(runCtx)
	}()
	t.Cleanup(func() {
		cancel()
		<-h.done
	})
	return h
}

// kill crashes a node without telling anyone: its addresses partition and
// its VMs die. Detection is the supervisor's job.
func (h *harness) kill(node *cloud.Node) {
	dep, _ := h.sup.Deployment()
	net := h.cl.Network()
	net.Partition(node.ProxyAddr)
	net.Partition(node.DataAddr)
	for _, inst := range dep.Instances {
		if inst.Node == node {
			inst.VM.Kill()
		}
	}
}

// waitGeneration polls until the supervisor's deployment generation reaches
// want.
func (h *harness) waitGeneration(want int) *cloud.Deployment {
	h.t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		dep, gen := h.sup.Deployment()
		if gen >= want {
			return dep
		}
		if time.Now().After(deadline) {
			h.t.Fatalf("generation %d not reached (events:\n%s)", want, h.eventDump())
		}
		time.Sleep(time.Millisecond)
	}
}

// checkpointDurable takes a checkpoint and waits until it is the durability
// watermark.
func (h *harness) checkpointDurable() int {
	h.t.Helper()
	id, err := h.sup.CheckpointNow(ctx)
	if err != nil {
		h.t.Fatalf("CheckpointNow: %v", err)
	}
	deadline := time.Now().Add(15 * time.Second)
	for {
		dep, _ := h.sup.Deployment()
		if dep.DurableWatermark() >= id {
			return id
		}
		if time.Now().After(deadline) {
			h.t.Fatalf("checkpoint %d never became durable (events:\n%s)", id, h.eventDump())
		}
		time.Sleep(time.Millisecond)
	}
}

func (h *harness) eventDump() string {
	var b strings.Builder
	for _, e := range h.sup.Events().Since(0) {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// writeRound records one round of work on every instance: a progress
// counter plus a payload that dirties real chunks.
func writeRound(t *testing.T, dep *cloud.Deployment, round int) {
	t.Helper()
	payload := make([]byte, 16*1024)
	for i := range payload {
		payload[i] = byte(round + i)
	}
	for _, inst := range dep.Instances {
		fs := inst.VM.FS()
		if fs == nil {
			t.Fatalf("%s has no mounted fs (state %s)", inst.VMID, inst.VM.State())
		}
		if err := fs.WriteFile("/progress", []byte(strconv.Itoa(round))); err != nil {
			t.Fatal(err)
		}
		if err := fs.WriteFile("/data", payload); err != nil {
			t.Fatal(err)
		}
	}
}

// readProgress returns each instance's progress counter.
func readProgress(t *testing.T, dep *cloud.Deployment) []int {
	t.Helper()
	out := make([]int, len(dep.Instances))
	for i, inst := range dep.Instances {
		raw, err := inst.VM.FS().ReadFile("/progress")
		if err != nil {
			t.Fatalf("%s: read progress: %v", inst.VMID, err)
		}
		v, err := strconv.Atoi(string(raw))
		if err != nil {
			t.Fatalf("%s: progress %q", inst.VMID, raw)
		}
		out[i] = v
	}
	return out
}

func TestUnattendedRecoveryEndToEnd(t *testing.T) {
	h := newHarness(t, supervisor.Config{
		HeartbeatEvery: 2 * time.Millisecond,
		PingTimeout:    10 * time.Millisecond,
		SuspectAfter:   2,
		MinInterval:    time.Hour, // checkpoints driven explicitly at quiescent points
		MaxInterval:    time.Hour,
		BackoffBase:    2 * time.Millisecond,
		PartialRestart: true,
	}, 6, 3, nil)
	const target = 30

	// Phase 1: work, checkpoint at round 10.
	dep, _ := h.sup.Deployment()
	for r := 1; r <= 10; r++ {
		writeRound(t, dep, r)
	}
	h.checkpointDurable()

	// Two rounds that the failure will roll back.
	writeRound(t, dep, 11)
	writeRound(t, dep, 12)

	// First unannounced failure.
	h.kill(dep.Instances[1].Node)
	dep = h.waitGeneration(1)
	for i, p := range readProgress(t, dep) {
		if p != 10 {
			t.Errorf("instance %d resumed at round %d, want 10 (rolled back to the durable checkpoint)", i, p)
		}
	}
	m := h.sup.Metrics()
	if m.Recoveries != 1 || m.FailuresDetected != 1 {
		t.Fatalf("metrics after first failure: %+v", m)
	}
	if m.RedeployedVMs != 1 || m.InPlaceVMs != 2 {
		t.Errorf("partial restart redeployed %d / in-place %d, want 1 / 2", m.RedeployedVMs, m.InPlaceVMs)
	}
	if m.LastMTTR <= 0 {
		t.Error("MTTR not accounted")
	}

	// Phase 2: continue to round 20, checkpoint, then a failure hitting
	// while the next checkpoint's async commits may still be in flight.
	for r := 11; r <= 20; r++ {
		writeRound(t, dep, r)
	}
	h.checkpointDurable()
	writeRound(t, dep, 21)
	if _, err := h.sup.CheckpointNow(ctx); err != nil {
		t.Fatalf("checkpoint before second failure: %v", err)
	}
	// Post-initiation garbage: captured by no checkpoint, must never survive.
	for _, inst := range dep.Instances {
		if err := inst.VM.FS().WriteFile("/junk", []byte("doomed")); err != nil {
			t.Fatal(err)
		}
	}
	h.kill(dep.Instances[2].Node)
	dep = h.waitGeneration(2)
	for i, p := range readProgress(t, dep) {
		// Round 21 survives if the in-flight checkpoint won the race to
		// durability, round 20 otherwise — never anything else, and never
		// the half-published state.
		if p != 20 && p != 21 {
			t.Errorf("instance %d resumed at round %d, want 20 or 21", i, p)
		}
	}
	for _, inst := range dep.Instances {
		if _, err := inst.VM.FS().ReadFile("/junk"); err == nil {
			t.Errorf("%s: post-checkpoint junk survived recovery", inst.VMID)
		}
	}

	// Phase 3: finish the job. Zero manual Restart calls anywhere.
	start := readProgress(t, dep)[0]
	for r := start + 1; r <= target; r++ {
		writeRound(t, dep, r)
	}
	h.checkpointDurable()
	for i, p := range readProgress(t, dep) {
		if p != target {
			t.Errorf("instance %d finished at round %d, want %d", i, p, target)
		}
	}
	m = h.sup.Metrics()
	if m.Recoveries != 2 {
		t.Fatalf("Recoveries = %d, want 2", m.Recoveries)
	}
	if m.MeanMTTR() <= 0 || m.MaxMTTR < m.MeanMTTR() {
		t.Errorf("MTTR accounting inconsistent: %+v", m)
	}

	// The event stream tells the whole story, in order, for each failure.
	var seq []supervisor.EventType
	for _, e := range h.sup.Events().Since(0) {
		switch e.Type {
		case supervisor.EventFailureDetected, supervisor.EventRollbackPlanned, supervisor.EventRestartDone:
			seq = append(seq, e.Type)
		}
	}
	want := []supervisor.EventType{
		supervisor.EventFailureDetected, supervisor.EventRollbackPlanned, supervisor.EventRestartDone,
		supervisor.EventFailureDetected, supervisor.EventRollbackPlanned, supervisor.EventRestartDone,
	}
	if fmt.Sprint(seq) != fmt.Sprint(want) {
		t.Errorf("event sequence = %v, want %v\n%s", seq, want, h.eventDump())
	}
}

// TestDalyCadence: left to itself, the supervisor drives periodic
// checkpoints at its computed interval and the durability watermark
// advances without any explicit CheckpointNow.
func TestDalyCadence(t *testing.T) {
	h := newHarness(t, supervisor.Config{
		HeartbeatEvery:  5 * time.Millisecond,
		SuspectAfter:    3,
		MTBF:            time.Minute,
		InitialCkptCost: time.Millisecond,
		MinInterval:     10 * time.Millisecond,
		MaxInterval:     10 * time.Millisecond,
	}, 3, 2, nil)
	deadline := time.Now().Add(15 * time.Second)
	for {
		dep, _ := h.sup.Deployment()
		if dep.DurableWatermark() >= 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("cadence never produced 3 durable checkpoints:\n%s", h.eventDump())
		}
		time.Sleep(time.Millisecond)
	}
	m := h.sup.Metrics()
	if m.CheckpointsDurable < 3 {
		t.Errorf("CheckpointsDurable = %d", m.CheckpointsDurable)
	}
	if m.HeartbeatsSent == 0 {
		t.Error("no heartbeats sent")
	}
	// The interval reflects the observed (tiny) cost against the configured
	// MTBF, clamped into the configured band.
	if iv := h.sup.Interval(); iv != 10*time.Millisecond {
		t.Errorf("Interval = %s, want the 10ms clamp", iv)
	}
}

func TestEventsEndpoint(t *testing.T) {
	h := newHarness(t, supervisor.Config{
		HeartbeatEvery: 5 * time.Millisecond,
		MinInterval:    time.Hour,
		MaxInterval:    time.Hour,
	}, 3, 2, nil)
	h.checkpointDurable()
	srv, err := h.sup.Serve(h.cl.Network(), "")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	resp, err := h.cl.Network().Call(ctx, srv.Addr(), []byte("EVENTS 0"))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(string(resp), "\n")
	if !strings.HasPrefix(lines[0], "OK ") || len(lines) < 2 {
		t.Fatalf("EVENTS response: %q", resp)
	}
	if !strings.Contains(string(resp), string(supervisor.EventCheckpointDurable)) {
		t.Errorf("event stream lacks the durable checkpoint: %q", resp)
	}

	resp, err = h.cl.Network().Call(ctx, srv.Addr(), []byte("STATUS"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(resp), "watermark=1") {
		t.Errorf("STATUS = %q, want watermark=1", resp)
	}
}

// TestRecoveryRearmsWithoutDurableCheckpoint: a failure that hits before any
// checkpoint is durable has no rollback target, but the supervisor must keep
// starting fresh recovery episodes instead of giving up for good.
func TestRecoveryRearmsWithoutDurableCheckpoint(t *testing.T) {
	h := newHarness(t, supervisor.Config{
		HeartbeatEvery: 2 * time.Millisecond,
		PingTimeout:    10 * time.Millisecond,
		SuspectAfter:   2,
		MinInterval:    time.Hour,
		MaxInterval:    time.Hour,
		BackoffBase:    2 * time.Millisecond,
		BackoffMax:     20 * time.Millisecond, // episode cadence
	}, 4, 2, nil)
	dep, _ := h.sup.Deployment()
	h.kill(dep.Instances[0].Node)

	// At least two distinct recovery-failed episodes fire: the first on
	// detection, later ones from the re-armed loop.
	deadline := time.Now().Add(10 * time.Second)
	for {
		n := 0
		for _, e := range h.sup.Events().Since(0) {
			if e.Type == supervisor.EventRecoveryFailed {
				n++
			}
		}
		if n >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("recovery episodes did not re-arm without a durable checkpoint:\n%s", h.eventDump())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestProviderOnlyNodeRetiredWithoutRollback: a node that hosts no member —
// only its co-located data provider — dies. The supervisor must detect it
// (heartbeats cover every node, not just instance hosts), retire it from
// placement and the provider rotation, and leave the running job alone.
func TestProviderOnlyNodeRetiredWithoutRollback(t *testing.T) {
	h := newHarness(t, supervisor.Config{
		HeartbeatEvery: 2 * time.Millisecond,
		PingTimeout:    10 * time.Millisecond,
		SuspectAfter:   2,
		MinInterval:    time.Hour,
		MaxInterval:    time.Hour,
	}, 5, 2, nil)
	dep, _ := h.sup.Deployment()
	h.checkpointDurable()

	// Find a node hosting no instance and crash it.
	hosting := map[string]bool{}
	for _, inst := range dep.Instances {
		hosting[inst.Node.Name] = true
	}
	var spare *cloud.Node
	for _, n := range h.cl.Nodes() {
		if !hosting[n.Name] {
			spare = n
			break
		}
	}
	if spare == nil {
		t.Fatal("no provider-only node in the topology")
	}
	h.kill(spare)

	deadline := time.Now().Add(10 * time.Second)
	for {
		retired := false
		for _, e := range h.sup.Events().Since(0) {
			if e.Type == supervisor.EventNodeRetired && e.Node == spare.Name {
				retired = true
			}
		}
		if retired {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("provider-only node never retired:\n%s", h.eventDump())
		}
		time.Sleep(time.Millisecond)
	}
	// No rollback happened: same generation, job untouched, and the cloud
	// marked the node failed (placement + prune skip it).
	if _, gen := h.sup.Deployment(); gen != 0 {
		t.Fatalf("provider-only failure triggered a restart (gen %d)", gen)
	}
	if !spare.Failed() {
		t.Error("dead provider node not fail-stopped with the middleware")
	}
	if h.sup.Metrics().Recoveries != 0 {
		t.Error("recovery counted for a provider-only failure")
	}
	// The deployment still checkpoints durably and can be pruned (the sweep
	// skips the dead provider).
	id := h.checkpointDurable()
	d, _ := h.sup.Deployment()
	if _, err := h.cl.Prune(ctx, d, id); err != nil {
		t.Fatalf("prune with a dead provider-only node: %v", err)
	}
}
