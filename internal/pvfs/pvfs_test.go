package pvfs

import (
	"bytes"
	"context"
	"errors"
	"io"
	"math/rand"
	"sync"
	"testing"

	"blobcr/internal/transport"
)

// ctx is the default context for test operations.
var ctx = context.Background()

const ss = 1024 // small stripe size for tests

func deploy(t *testing.T, nData int) (*Deployment, *Client) {
	t.Helper()
	d, err := Deploy(transport.NewInProc(), nData)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)
	return d, d.Client()
}

func TestCreateWriteRead(t *testing.T) {
	_, c := deploy(t, 4)
	f, err := c.Create(ctx, "/ckpt/rank0.dat", ss)
	if err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte{0xE7}, 5*ss+123)
	if _, err := f.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	if f.Size() != int64(len(data)) {
		t.Errorf("Size = %d, want %d", f.Size(), len(data))
	}
	got := make([]byte, len(data))
	if _, err := f.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Error("round-trip mismatch")
	}
}

func TestStripingDistributesData(t *testing.T) {
	d, c := deploy(t, 4)
	f, err := c.Create(ctx, "/big", ss)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt(bytes.Repeat([]byte{1}, 8*ss), 0); err != nil {
		t.Fatal(err)
	}
	// 8 stripes over 4 servers: each server holds exactly 2.
	for i, dsrv := range d.DataServers() {
		if got := dsrv.UsedBytes(); got != 2*ss {
			t.Errorf("server %d holds %d bytes, want %d", i, got, 2*ss)
		}
	}
}

func TestUnalignedWriteAcrossStripes(t *testing.T) {
	_, c := deploy(t, 3)
	f, err := c.Create(ctx, "/u", ss)
	if err != nil {
		t.Fatal(err)
	}
	base := bytes.Repeat([]byte{0xAA}, 3*ss)
	if _, err := f.WriteAt(base, 0); err != nil {
		t.Fatal(err)
	}
	patch := bytes.Repeat([]byte{0xBB}, ss)
	if _, err := f.WriteAt(patch, ss/2); err != nil {
		t.Fatal(err)
	}
	want := append([]byte(nil), base...)
	copy(want[ss/2:], patch)
	got := make([]byte, len(base))
	if _, err := f.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Error("unaligned write across stripes corrupted data")
	}
}

func TestOpenExistingAndMissing(t *testing.T) {
	_, c := deploy(t, 2)
	if _, err := c.Create(ctx, "/x", ss); err != nil {
		t.Fatal(err)
	}
	f, err := c.Open(ctx, "/x")
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if f.Size() != 0 {
		t.Errorf("new file size = %d", f.Size())
	}
	if _, err := c.Open(ctx, "/missing"); err == nil {
		t.Error("Open of missing file succeeded")
	}
	if _, err := c.Create(ctx, "/x", ss); err == nil {
		t.Error("duplicate Create succeeded")
	}
}

func TestReadPastEnd(t *testing.T) {
	_, c := deploy(t, 2)
	f, _ := c.Create(ctx, "/s", ss)
	f.WriteAt([]byte("abc"), 0)
	buf := make([]byte, 10)
	n, err := f.ReadAt(buf, 0)
	if n != 3 || err != io.EOF {
		t.Errorf("ReadAt = (%d, %v), want (3, EOF)", n, err)
	}
	if _, err := f.ReadAt(buf, 100); err != io.EOF {
		t.Errorf("read past end err = %v", err)
	}
}

func TestSparseRegionsReadZero(t *testing.T) {
	_, c := deploy(t, 3)
	f, _ := c.Create(ctx, "/sparse", ss)
	// Write at stripe 5 only; stripes 0-4 are holes.
	if _, err := f.WriteAt([]byte{0x9C}, int64(5*ss)); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 5*ss+1)
	if _, err := f.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5*ss; i++ {
		if got[i] != 0 {
			t.Fatalf("hole byte %d = %#x", i, got[i])
		}
	}
	if got[5*ss] != 0x9C {
		t.Error("written byte lost")
	}
}

func TestUnlinkFreesSpace(t *testing.T) {
	_, c := deploy(t, 2)
	f, _ := c.Create(ctx, "/del", ss)
	f.WriteAt(bytes.Repeat([]byte{1}, 4*ss), 0)
	used, err := c.Usage(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if used != 4*ss {
		t.Fatalf("usage = %d", used)
	}
	if err := c.Unlink(ctx, "/del"); err != nil {
		t.Fatal(err)
	}
	used, err = c.Usage(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if used != 0 {
		t.Errorf("usage after unlink = %d", used)
	}
	if err := c.Unlink(ctx, "/del"); !errors.Is(err, ErrNotFound) && err == nil {
		t.Error("double unlink succeeded")
	}
}

func TestReaddir(t *testing.T) {
	_, c := deploy(t, 2)
	c.Create(ctx, "/b", ss)
	fa, _ := c.Create(ctx, "/a", ss)
	fa.WriteAt([]byte("12345"), 0)
	entries, err := c.Readdir(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 || entries[0].Path != "/a" || entries[0].Size != 5 || entries[1].Path != "/b" {
		t.Errorf("Readdir = %+v", entries)
	}
}

func TestRefreshSeesOtherHandleGrowth(t *testing.T) {
	_, c := deploy(t, 2)
	f1, _ := c.Create(ctx, "/g", ss)
	f2, _ := c.Open(ctx, "/g")
	f1.WriteAt(bytes.Repeat([]byte{1}, 2*ss), 0)
	if f2.Size() != 0 {
		t.Error("stale handle saw growth without Refresh")
	}
	if err := f2.Refresh(); err != nil {
		t.Fatal(err)
	}
	if f2.Size() != 2*ss {
		t.Errorf("after Refresh size = %d", f2.Size())
	}
}

func TestConcurrentWritersDistinctFiles(t *testing.T) {
	_, c := deploy(t, 4)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			path := string(rune('a'+i)) + "-file"
			f, err := c.Create(ctx, path, ss)
			if err != nil {
				t.Errorf("create %s: %v", path, err)
				return
			}
			data := bytes.Repeat([]byte{byte(i + 1)}, 3*ss)
			if _, err := f.WriteAt(data, 0); err != nil {
				t.Errorf("write %s: %v", path, err)
				return
			}
			got := make([]byte, len(data))
			if _, err := f.ReadAt(got, 0); err != nil {
				t.Errorf("read %s: %v", path, err)
				return
			}
			if !bytes.Equal(got, data) {
				t.Errorf("%s: mismatch", path)
			}
		}(i)
	}
	wg.Wait()
}

func TestRandomizedShadowModel(t *testing.T) {
	_, c := deploy(t, 5)
	f, err := c.Create(ctx, "/rand", ss)
	if err != nil {
		t.Fatal(err)
	}
	const size = 20 * ss
	shadow := make([]byte, size)
	rng := rand.New(rand.NewSource(31))
	for iter := 0; iter < 100; iter++ {
		off := rng.Intn(size - 1)
		n := rng.Intn(min(size-off, 4*ss)) + 1
		patch := make([]byte, n)
		rng.Read(patch)
		if _, err := f.WriteAt(patch, int64(off)); err != nil {
			t.Fatal(err)
		}
		copy(shadow[off:], patch)
	}
	got := make([]byte, size)
	if _, err := f.ReadAt(got, 0); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	// The shadow may exceed the actual written extent; compare prefix up to
	// the file size.
	if !bytes.Equal(got[:f.Size()], shadow[:f.Size()]) {
		t.Error("content diverged from shadow model")
	}
}

func TestDefaultStripeSize(t *testing.T) {
	_, c := deploy(t, 2)
	f, err := c.Create(ctx, "/def", 0)
	if err != nil {
		t.Fatal(err)
	}
	if f.meta.stripeSize != DefaultStripeSize {
		t.Errorf("stripeSize = %d, want %d", f.meta.stripeSize, DefaultStripeSize)
	}
}
