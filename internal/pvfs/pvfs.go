// Package pvfs implements a PVFS-style user-level parallel file system: one
// metadata server plus N data servers, with file contents striped
// round-robin across the data servers in fixed-size units.
//
// This is the storage substrate of the paper's qcow2-over-PVFS baselines:
// local qcow2 images are copied into PVFS at every checkpoint, and full-VM
// snapshots are stored there. As in PVFS, all metadata operations go through
// the single metadata server, and concurrent writers share the same fixed
// set of data servers — the contention behaviour that shapes Figures 2-3.
package pvfs

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"

	"blobcr/internal/transport"
	"blobcr/internal/wire"
)

// DefaultStripeSize matches the paper's configuration (256 KB).
const DefaultStripeSize = 256 * 1024

// Errors returned by the client. ErrNotFound satisfies
// errors.Is(err, transport.ErrNotFound), so the condition survives the wire.
var (
	ErrNotFound error = transport.NotFoundError("pvfs: file not found")
	ErrExists         = errors.New("pvfs: file already exists")
)

// Op codes: metadata server.
const (
	opCreate = iota + 1
	opStat
	opUnlink
	opReaddir
	opSetSize
)

// Op codes: data server.
const (
	opStripePut = iota + 32
	opStripeGet
	opStripeDel
	opUsage
)

// fileMeta is the metadata server's record of one file.
type fileMeta struct {
	id         uint64
	size       uint64
	stripeSize uint64
	firstSrv   uint32 // index of the data server holding stripe 0
}

// MetadataServer manages the PVFS namespace. All lookups and size updates
// serialize here — the central coordination point the paper contrasts with
// BlobSeer's decentralized metadata.
type MetadataServer struct {
	mu      sync.Mutex
	files   map[string]*fileMeta
	nextID  uint64
	nextSrv uint32
	nSrv    uint32
}

// NewMetadataServer returns a metadata server for a deployment with nData
// data servers.
func NewMetadataServer(nData int) *MetadataServer {
	return &MetadataServer{files: make(map[string]*fileMeta), nextID: 1, nSrv: uint32(nData)}
}

// Serve binds the metadata server to addr on n.
func (ms *MetadataServer) Serve(n transport.Network, addr string) (transport.Server, error) {
	return n.Listen(addr, ms.handle)
}

func (ms *MetadataServer) handle(_ context.Context, req []byte) ([]byte, error) {
	r := wire.NewReader(req)
	op := int(r.U8())
	if err := r.Err(); err != nil {
		return nil, err
	}
	ms.mu.Lock()
	defer ms.mu.Unlock()
	w := wire.NewBuffer(64)
	switch op {
	case opCreate:
		path := r.String()
		stripeSize := r.U64()
		if err := r.Err(); err != nil {
			return nil, err
		}
		if stripeSize == 0 {
			stripeSize = DefaultStripeSize
		}
		if _, exists := ms.files[path]; exists {
			return nil, fmt.Errorf("%w: %s", ErrExists, path)
		}
		f := &fileMeta{id: ms.nextID, stripeSize: stripeSize, firstSrv: ms.nextSrv % ms.nSrv}
		ms.nextID++
		ms.nextSrv++
		ms.files[path] = f
		putMeta(w, f)

	case opStat:
		path := r.String()
		if err := r.Err(); err != nil {
			return nil, err
		}
		f, ok := ms.files[path]
		if !ok {
			return nil, fmt.Errorf("%w: %s", ErrNotFound, path)
		}
		putMeta(w, f)

	case opUnlink:
		path := r.String()
		if err := r.Err(); err != nil {
			return nil, err
		}
		f, ok := ms.files[path]
		if !ok {
			return nil, fmt.Errorf("%w: %s", ErrNotFound, path)
		}
		delete(ms.files, path)
		putMeta(w, f) // caller deletes the stripes

	case opReaddir:
		if err := r.Err(); err != nil {
			return nil, err
		}
		paths := make([]string, 0, len(ms.files))
		for p := range ms.files {
			paths = append(paths, p)
		}
		sort.Strings(paths)
		w.PutUvarint(uint64(len(paths)))
		for _, p := range paths {
			w.PutString(p)
			w.PutU64(ms.files[p].size)
		}

	case opSetSize:
		path := r.String()
		size := r.U64()
		if err := r.Err(); err != nil {
			return nil, err
		}
		f, ok := ms.files[path]
		if !ok {
			return nil, fmt.Errorf("%w: %s", ErrNotFound, path)
		}
		if size > f.size {
			f.size = size
		}
		w.PutU64(f.size)

	default:
		return nil, fmt.Errorf("pvfs: metadata server: unknown op %d", op)
	}
	return w.Bytes(), nil
}

func putMeta(w *wire.Buffer, f *fileMeta) {
	w.PutU64(f.id)
	w.PutU64(f.size)
	w.PutU64(f.stripeSize)
	w.PutU32(f.firstSrv)
}

func getMeta(r *wire.Reader) fileMeta {
	var f fileMeta
	f.id = r.U64()
	f.size = r.U64()
	f.stripeSize = r.U64()
	f.firstSrv = r.U32()
	return f
}

// stripeKey identifies one stripe unit on a data server.
type stripeKey struct {
	file  uint64
	index uint64
}

// DataServer stores stripe units in memory.
type DataServer struct {
	mu      sync.RWMutex
	stripes map[stripeKey][]byte
	bytes   int64
}

// NewDataServer returns an empty data server.
func NewDataServer() *DataServer {
	return &DataServer{stripes: make(map[stripeKey][]byte)}
}

// Serve binds the data server to addr on n.
func (ds *DataServer) Serve(n transport.Network, addr string) (transport.Server, error) {
	return n.Listen(addr, ds.handle)
}

// UsedBytes returns the stored payload bytes (space accounting).
func (ds *DataServer) UsedBytes() int64 {
	ds.mu.RLock()
	defer ds.mu.RUnlock()
	return ds.bytes
}

func (ds *DataServer) handle(_ context.Context, req []byte) ([]byte, error) {
	r := wire.NewReader(req)
	op := int(r.U8())
	if err := r.Err(); err != nil {
		return nil, err
	}
	w := wire.NewBuffer(32)
	switch op {
	case opStripePut:
		key := stripeKey{file: r.U64(), index: r.U64()}
		inner := r.U64() // offset inside the stripe
		data := r.Bytes()
		if err := r.Err(); err != nil {
			return nil, err
		}
		ds.mu.Lock()
		s := ds.stripes[key]
		end := inner + uint64(len(data))
		if end > uint64(len(s)) {
			grown := make([]byte, end)
			copy(grown, s)
			ds.bytes += int64(end) - int64(len(s))
			s = grown
		}
		copy(s[inner:], data)
		ds.stripes[key] = s
		ds.mu.Unlock()

	case opStripeGet:
		key := stripeKey{file: r.U64(), index: r.U64()}
		if err := r.Err(); err != nil {
			return nil, err
		}
		ds.mu.RLock()
		s := ds.stripes[key]
		ds.mu.RUnlock()
		w.PutBytes(s) // absent stripe reads as empty

	case opStripeDel:
		fileID := r.U64()
		if err := r.Err(); err != nil {
			return nil, err
		}
		ds.mu.Lock()
		for k, s := range ds.stripes {
			if k.file == fileID {
				ds.bytes -= int64(len(s))
				delete(ds.stripes, k)
			}
		}
		ds.mu.Unlock()

	case opUsage:
		if err := r.Err(); err != nil {
			return nil, err
		}
		ds.mu.RLock()
		w.PutU64(uint64(ds.bytes))
		w.PutU64(uint64(len(ds.stripes)))
		ds.mu.RUnlock()

	default:
		return nil, fmt.Errorf("pvfs: data server: unknown op %d", op)
	}
	return w.Bytes(), nil
}

// Client accesses a PVFS deployment.
type Client struct {
	Net       transport.Network
	MetaAddr  string
	DataAddrs []string
}

// File is an open PVFS file handle.
type File struct {
	c    *Client
	path string
	meta fileMeta
}

func (c *Client) callMeta(ctx context.Context, w *wire.Buffer) (*wire.Reader, error) {
	resp, err := c.Net.Call(ctx, c.MetaAddr, w.Bytes())
	if err != nil {
		return nil, err
	}
	return wire.NewReader(resp), nil
}

// Create creates a new file (stripeSize 0 selects the default).
func (c *Client) Create(ctx context.Context, path string, stripeSize uint64) (*File, error) {
	w := wire.NewBuffer(64)
	w.PutU8(opCreate)
	w.PutString(path)
	w.PutU64(stripeSize)
	r, err := c.callMeta(ctx, w)
	if err != nil {
		return nil, err
	}
	m := getMeta(r)
	if err := r.Err(); err != nil {
		return nil, err
	}
	return &File{c: c, path: path, meta: m}, nil
}

// Open opens an existing file.
func (c *Client) Open(ctx context.Context, path string) (*File, error) {
	w := wire.NewBuffer(64)
	w.PutU8(opStat)
	w.PutString(path)
	r, err := c.callMeta(ctx, w)
	if err != nil {
		return nil, err
	}
	m := getMeta(r)
	if err := r.Err(); err != nil {
		return nil, err
	}
	return &File{c: c, path: path, meta: m}, nil
}

// Unlink removes a file and its stripes.
func (c *Client) Unlink(ctx context.Context, path string) error {
	w := wire.NewBuffer(64)
	w.PutU8(opUnlink)
	w.PutString(path)
	r, err := c.callMeta(ctx, w)
	if err != nil {
		return err
	}
	m := getMeta(r)
	if err := r.Err(); err != nil {
		return err
	}
	for _, addr := range c.DataAddrs {
		dw := wire.NewBuffer(16)
		dw.PutU8(opStripeDel)
		dw.PutU64(m.id)
		if _, err := c.Net.Call(ctx, addr, dw.Bytes()); err != nil {
			return err
		}
	}
	return nil
}

// DirEntry is one Readdir result.
type DirEntry struct {
	Path string
	Size uint64
}

// Readdir lists all files.
func (c *Client) Readdir(ctx context.Context) ([]DirEntry, error) {
	w := wire.NewBuffer(8)
	w.PutU8(opReaddir)
	r, err := c.callMeta(ctx, w)
	if err != nil {
		return nil, err
	}
	n := r.Uvarint()
	out := make([]DirEntry, 0, n)
	for i := uint64(0); i < n; i++ {
		out = append(out, DirEntry{Path: r.String(), Size: r.U64()})
	}
	return out, r.Err()
}

// Usage sums stored bytes across all data servers.
func (c *Client) Usage(ctx context.Context) (uint64, error) {
	var total uint64
	for _, addr := range c.DataAddrs {
		w := wire.NewBuffer(8)
		w.PutU8(opUsage)
		resp, err := c.Net.Call(ctx, addr, w.Bytes())
		if err != nil {
			return 0, err
		}
		r := wire.NewReader(resp)
		total += r.U64()
		if err := r.Err(); err != nil {
			return 0, err
		}
	}
	return total, nil
}

// server returns the data server address for a stripe index.
func (f *File) server(stripe uint64) string {
	n := uint64(len(f.c.DataAddrs))
	return f.c.DataAddrs[(uint64(f.meta.firstSrv)+stripe)%n]
}

// WriteAt implements io.WriterAt with round-robin striping.
func (f *File) WriteAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, errors.New("pvfs: negative offset")
	}
	ss := f.meta.stripeSize
	written := 0
	for written < len(p) {
		o := uint64(off) + uint64(written)
		stripe := o / ss
		inner := o % ss
		n := ss - inner
		if rem := uint64(len(p) - written); n > rem {
			n = rem
		}
		w := wire.NewBuffer(int(n) + 40)
		w.PutU8(opStripePut)
		w.PutU64(f.meta.id)
		w.PutU64(stripe)
		w.PutU64(inner)
		w.PutBytes(p[written : written+int(n)])
		if _, err := f.c.Net.Call(context.Background(), f.server(stripe), w.Bytes()); err != nil {
			return written, err
		}
		written += int(n)
	}
	end := uint64(off) + uint64(len(p))
	if end > f.meta.size {
		w := wire.NewBuffer(64)
		w.PutU8(opSetSize)
		w.PutString(f.path)
		w.PutU64(end)
		r, err := f.c.callMeta(context.Background(), w)
		if err != nil {
			return written, err
		}
		f.meta.size = r.U64()
		if err := r.Err(); err != nil {
			return written, err
		}
	}
	return written, nil
}

// ReadAt implements io.ReaderAt. Reads past the end return io.EOF.
func (f *File) ReadAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, errors.New("pvfs: negative offset")
	}
	size := f.meta.size
	if uint64(off) >= size {
		return 0, io.EOF
	}
	total := len(p)
	if uint64(off)+uint64(total) > size {
		total = int(size - uint64(off))
	}
	ss := f.meta.stripeSize
	read := 0
	for read < total {
		o := uint64(off) + uint64(read)
		stripe := o / ss
		inner := o % ss
		n := ss - inner
		if rem := uint64(total - read); n > rem {
			n = rem
		}
		w := wire.NewBuffer(32)
		w.PutU8(opStripeGet)
		w.PutU64(f.meta.id)
		w.PutU64(stripe)
		resp, err := f.c.Net.Call(context.Background(), f.server(stripe), w.Bytes())
		if err != nil {
			return read, err
		}
		r := wire.NewReader(resp)
		data := r.Bytes()
		if err := r.Err(); err != nil {
			return read, err
		}
		dst := p[read : read+int(n)]
		var copied int
		if inner < uint64(len(data)) {
			copied = copy(dst, data[inner:])
		}
		for i := copied; i < len(dst); i++ {
			dst[i] = 0 // sparse region inside the file
		}
		read += int(n)
	}
	if read < len(p) {
		return read, io.EOF
	}
	return read, nil
}

// Size returns the file size as of the last metadata refresh.
func (f *File) Size() int64 { return int64(f.meta.size) }

// Refresh re-reads the file metadata (size may have grown via other
// handles).
func (f *File) Refresh() error {
	nf, err := f.c.Open(context.Background(), f.path)
	if err != nil {
		return err
	}
	f.meta = nf.meta
	return nil
}

// Deployment is a running PVFS instance.
type Deployment struct {
	MetaAddr  string
	DataAddrs []string
	servers   []transport.Server
	data      []*DataServer
	net       transport.Network
}

// Deploy starts a PVFS deployment with nData data servers.
func Deploy(n transport.Network, nData int) (*Deployment, error) {
	if nData < 1 {
		return nil, errors.New("pvfs: need at least one data server")
	}
	d := &Deployment{net: n}
	ms := NewMetadataServer(nData)
	srv, err := ms.Serve(n, "")
	if err != nil {
		return nil, err
	}
	d.servers = append(d.servers, srv)
	d.MetaAddr = srv.Addr()
	for i := 0; i < nData; i++ {
		ds := NewDataServer()
		srv, err := ds.Serve(n, "")
		if err != nil {
			d.Close()
			return nil, err
		}
		d.servers = append(d.servers, srv)
		d.data = append(d.data, ds)
		d.DataAddrs = append(d.DataAddrs, srv.Addr())
	}
	return d, nil
}

// Client returns a client bound to this deployment.
func (d *Deployment) Client() *Client {
	return &Client{Net: d.net, MetaAddr: d.MetaAddr, DataAddrs: append([]string(nil), d.DataAddrs...)}
}

// DataServers exposes the data servers for inspection.
func (d *Deployment) DataServers() []*DataServer { return d.data }

// Close stops all servers.
func (d *Deployment) Close() {
	for _, s := range d.servers {
		s.Close()
	}
	d.servers = nil
}
