package guestfs

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"blobcr/internal/vdisk"
)

const bs = 512 // small blocks exercise indirect paths cheaply

func mkfs(t *testing.T, devSize int64) *FS {
	t.Helper()
	fs, err := Mkfs(vdisk.NewMem(devSize), bs)
	if err != nil {
		t.Fatalf("Mkfs: %v", err)
	}
	return fs
}

func TestMkfsValidation(t *testing.T) {
	if _, err := Mkfs(vdisk.NewMem(1<<20), 300); err == nil {
		t.Error("non-power-of-two block size accepted")
	}
	if _, err := Mkfs(vdisk.NewMem(1024), bs); err == nil {
		t.Error("tiny device accepted")
	}
}

func TestWriteReadFile(t *testing.T) {
	fs := mkfs(t, 1<<20)
	data := []byte("process state dump")
	if err := fs.WriteFile("/ckpt.dat", data); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadFile("/ckpt.dat")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Errorf("got %q", got)
	}
	if err := fs.Fsck(); err != nil {
		t.Errorf("fsck: %v", err)
	}
}

func TestLargeFileThroughIndirectBlocks(t *testing.T) {
	fs := mkfs(t, 4<<20)
	// Large enough to need direct + indirect + double-indirect blocks:
	// direct covers 12*512 = 6 KB, indirect covers 64*512 = 32 KB.
	data := make([]byte, 200*1024)
	rng := rand.New(rand.NewSource(1))
	rng.Read(data)
	if err := fs.WriteFile("/big", data); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadFile("/big")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Error("large file content mismatch")
	}
	if err := fs.Fsck(); err != nil {
		t.Errorf("fsck: %v", err)
	}
}

func TestSparseFileReadsZero(t *testing.T) {
	fs := mkfs(t, 1<<20)
	f, err := fs.Create("/sparse")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{0xFF}, 10000); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadFile("/sparse")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10001 {
		t.Fatalf("size = %d", len(got))
	}
	for i := 0; i < 10000; i++ {
		if got[i] != 0 {
			t.Fatalf("hole byte %d = %#x", i, got[i])
		}
	}
	if got[10000] != 0xFF {
		t.Error("written byte lost")
	}
}

func TestDirectories(t *testing.T) {
	fs := mkfs(t, 1<<20)
	if err := fs.MkdirAll("/a/b/c"); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("/a/b/c/file.txt", []byte("x")); err != nil {
		t.Fatal(err)
	}
	entries, err := fs.ReadDir("/a/b")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name != "c" || !entries[0].IsDir {
		t.Errorf("ReadDir(/a/b) = %+v", entries)
	}
	info, err := fs.Stat("/a/b/c/file.txt")
	if err != nil {
		t.Fatal(err)
	}
	if info.IsDir || info.Size != 1 || info.Name != "file.txt" {
		t.Errorf("Stat = %+v", info)
	}
	if err := fs.Fsck(); err != nil {
		t.Errorf("fsck: %v", err)
	}
}

func TestPathErrors(t *testing.T) {
	fs := mkfs(t, 1<<20)
	if _, err := fs.Open("/missing"); !errors.Is(err, ErrNotExist) {
		t.Errorf("Open missing = %v", err)
	}
	if _, err := fs.Create("relative"); err == nil {
		t.Error("relative path accepted")
	}
	if _, err := fs.Open("/../etc"); err == nil {
		t.Error(".. path accepted")
	}
	fs.Mkdir("/d")
	if _, err := fs.Open("/d"); !errors.Is(err, ErrIsDir) {
		t.Errorf("Open dir = %v", err)
	}
	if err := fs.Mkdir("/d"); !errors.Is(err, ErrExist) {
		t.Errorf("Mkdir existing = %v", err)
	}
	fs.WriteFile("/f", []byte("1"))
	if _, err := fs.Create("/f/x"); !errors.Is(err, ErrNotDir) {
		t.Errorf("Create under file = %v", err)
	}
}

func TestCreateTruncatesExisting(t *testing.T) {
	fs := mkfs(t, 1<<20)
	fs.WriteFile("/t", bytes.Repeat([]byte{1}, 5000))
	free1 := fs.FreeBlocks()
	if err := fs.WriteFile("/t", []byte("ab")); err != nil {
		t.Fatal(err)
	}
	got, _ := fs.ReadFile("/t")
	if string(got) != "ab" {
		t.Errorf("got %q", got)
	}
	if fs.FreeBlocks() <= free1 {
		t.Error("truncate did not free blocks")
	}
	if err := fs.Fsck(); err != nil {
		t.Errorf("fsck: %v", err)
	}
}

func TestRemoveFreesSpace(t *testing.T) {
	fs := mkfs(t, 1<<20)
	free0 := fs.FreeBlocks()
	fs.WriteFile("/r", bytes.Repeat([]byte{2}, 50000))
	if fs.FreeBlocks() >= free0 {
		t.Fatal("write did not consume blocks")
	}
	if err := fs.Remove("/r"); err != nil {
		t.Fatal(err)
	}
	if fs.FreeBlocks() != free0 {
		t.Errorf("FreeBlocks = %d, want %d", fs.FreeBlocks(), free0)
	}
	if _, err := fs.Open("/r"); !errors.Is(err, ErrNotExist) {
		t.Error("removed file still opens")
	}
	if err := fs.Fsck(); err != nil {
		t.Errorf("fsck: %v", err)
	}
}

func TestRemoveDirectorySemantics(t *testing.T) {
	fs := mkfs(t, 1<<20)
	fs.MkdirAll("/d/sub")
	if err := fs.Remove("/d"); !errors.Is(err, ErrNotEmpty) {
		t.Errorf("Remove non-empty = %v", err)
	}
	if err := fs.Remove("/d/sub"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Remove("/d"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Remove("/d"); !errors.Is(err, ErrNotExist) {
		t.Errorf("double remove = %v", err)
	}
}

func TestAppendGrowsFile(t *testing.T) {
	fs := mkfs(t, 1<<20)
	f, _ := fs.Create("/log")
	for i := 0; i < 10; i++ {
		if _, err := f.Append([]byte(fmt.Sprintf("line %d\n", i))); err != nil {
			t.Fatal(err)
		}
	}
	got, _ := fs.ReadFile("/log")
	want := ""
	for i := 0; i < 10; i++ {
		want += fmt.Sprintf("line %d\n", i)
	}
	if string(got) != want {
		t.Errorf("log content = %q", got)
	}
}

func TestMountPersistence(t *testing.T) {
	dev := vdisk.NewMem(1 << 20)
	fs1, err := Mkfs(dev, bs)
	if err != nil {
		t.Fatal(err)
	}
	fs1.MkdirAll("/ckpt")
	data := bytes.Repeat([]byte{0xAD}, 30000)
	fs1.WriteFile("/ckpt/rank0", data)
	fs1.Sync()

	// Remount from the same device: all state must be durable.
	fs2, err := Mount(dev)
	if err != nil {
		t.Fatalf("Mount: %v", err)
	}
	got, err := fs2.ReadFile("/ckpt/rank0")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Error("content lost across remount")
	}
	if err := fs2.Fsck(); err != nil {
		t.Errorf("fsck after remount: %v", err)
	}
	// Writes continue to work after remount without trampling old data.
	fs2.WriteFile("/ckpt/rank1", []byte("new"))
	got, _ = fs2.ReadFile("/ckpt/rank0")
	if !bytes.Equal(got, data) {
		t.Error("old file damaged by post-remount write")
	}
}

func TestMountRejectsGarbage(t *testing.T) {
	dev := vdisk.NewMem(1 << 20)
	dev.WriteAt(bytes.Repeat([]byte{0x55}, 4096), 0)
	if _, err := Mount(dev); err == nil {
		t.Error("Mount accepted garbage")
	}
}

func TestNoSpace(t *testing.T) {
	fs := mkfs(t, 64*1024) // tiny
	var err error
	for i := 0; i < 1000 && err == nil; i++ {
		err = fs.WriteFile(fmt.Sprintf("/f%d", i), bytes.Repeat([]byte{1}, 4096))
	}
	if !errors.Is(err, ErrNoSpace) && !errors.Is(err, ErrNoInodes) {
		t.Errorf("filling device: err = %v, want ErrNoSpace/ErrNoInodes", err)
	}
	// FS must still be consistent after hitting the limit.
	if ferr := fs.Fsck(); ferr != nil {
		t.Errorf("fsck after ENOSPC: %v", ferr)
	}
}

func TestManyFilesInDirectory(t *testing.T) {
	fs := mkfs(t, 2<<20)
	const n = 100
	for i := 0; i < n; i++ {
		if err := fs.WriteFile(fmt.Sprintf("/file-%03d", i), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	entries, err := fs.ReadDir("/")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != n {
		t.Fatalf("ReadDir returned %d entries, want %d", len(entries), n)
	}
	for i, e := range entries {
		want := fmt.Sprintf("file-%03d", i)
		if e.Name != want {
			t.Fatalf("entry %d = %q, want %q (sorted)", i, e.Name, want)
		}
	}
	// Spot-check contents.
	got, _ := fs.ReadFile("/file-042")
	if len(got) != 1 || got[0] != 42 {
		t.Error("file content wrong")
	}
	if err := fs.Fsck(); err != nil {
		t.Errorf("fsck: %v", err)
	}
}

func TestOverwriteInPlace(t *testing.T) {
	fs := mkfs(t, 1<<20)
	fs.WriteFile("/o", bytes.Repeat([]byte{1}, 3000))
	f, _ := fs.Open("/o")
	free := fs.FreeBlocks()
	if _, err := f.WriteAt(bytes.Repeat([]byte{2}, 1000), 500); err != nil {
		t.Fatal(err)
	}
	if fs.FreeBlocks() != free {
		t.Error("in-place overwrite allocated blocks")
	}
	got, _ := fs.ReadFile("/o")
	if got[499] != 1 || got[500] != 2 || got[1499] != 2 || got[1500] != 1 {
		t.Error("overwrite boundaries wrong")
	}
}

func TestRandomizedFilesystemShadowModel(t *testing.T) {
	fs := mkfs(t, 4<<20)
	shadow := make(map[string][]byte)
	rng := rand.New(rand.NewSource(77))
	names := []string{"/a", "/b", "/c", "/d", "/e"}
	for iter := 0; iter < 300; iter++ {
		name := names[rng.Intn(len(names))]
		switch rng.Intn(4) {
		case 0: // write whole file
			data := make([]byte, rng.Intn(20000))
			rng.Read(data)
			if err := fs.WriteFile(name, data); err != nil {
				t.Fatalf("iter %d write %s: %v", iter, name, err)
			}
			shadow[name] = data
		case 1: // remove
			_, exists := shadow[name]
			err := fs.Remove(name)
			if exists && err != nil {
				t.Fatalf("iter %d remove %s: %v", iter, name, err)
			}
			if !exists && err == nil {
				t.Fatalf("iter %d: removed nonexistent %s", iter, name)
			}
			delete(shadow, name)
		case 2: // patch
			if content, ok := shadow[name]; ok && len(content) > 0 {
				off := rng.Intn(len(content))
				n := rng.Intn(len(content)-off) + 1
				patch := make([]byte, n)
				rng.Read(patch)
				f, err := fs.Open(name)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := f.WriteAt(patch, int64(off)); err != nil {
					t.Fatal(err)
				}
				copy(content[off:], patch)
			}
		default: // verify
			if content, ok := shadow[name]; ok {
				got, err := fs.ReadFile(name)
				if err != nil {
					t.Fatalf("iter %d read %s: %v", iter, name, err)
				}
				if !bytes.Equal(got, content) {
					t.Fatalf("iter %d: %s diverged", iter, name)
				}
			}
		}
	}
	if err := fs.Fsck(); err != nil {
		t.Errorf("final fsck: %v", err)
	}
	// Final verification of all files.
	for name, content := range shadow {
		got, err := fs.ReadFile(name)
		if err != nil {
			t.Fatalf("final read %s: %v", name, err)
		}
		if !bytes.Equal(got, content) {
			t.Errorf("final: %s diverged", name)
		}
	}
}

func TestFsckDetectsCorruption(t *testing.T) {
	dev := vdisk.NewMem(1 << 20)
	fs, err := Mkfs(dev, bs)
	if err != nil {
		t.Fatal(err)
	}
	fs.WriteFile("/x", bytes.Repeat([]byte{1}, 5000))
	if err := fs.Fsck(); err != nil {
		t.Fatalf("clean fsck failed: %v", err)
	}
	// Corrupt: mark a used block as free in the bitmap.
	n, err := fs.readInode(2) // the file's inode (root is 1)
	if err != nil {
		t.Fatal(err)
	}
	if n.direct[0] == 0 {
		t.Fatal("test setup: file has no direct block")
	}
	b := n.direct[0]
	fs.bitmap[b/8] &^= 1 << (b % 8)
	if err := fs.Fsck(); err == nil {
		t.Error("fsck missed bitmap corruption")
	}
}

func TestMaxFileSize(t *testing.T) {
	fs := mkfs(t, 1<<20)
	// direct 12 + indirect 64 + double 64*64 = 4172 blocks * 512 = ~2.1 MB
	want := uint64(12+64+64*64) * bs
	if got := fs.MaxFileSize(); got != want {
		t.Errorf("MaxFileSize = %d, want %d", got, want)
	}
	f, _ := fs.Create("/huge")
	if _, err := f.WriteAt([]byte{1}, int64(fs.MaxFileSize())); err == nil {
		t.Error("write past max file size accepted")
	}
}
