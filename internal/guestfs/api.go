package guestfs

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// Info describes a file or directory.
type Info struct {
	Name  string
	Size  uint64
	IsDir bool
	Inode uint64
}

// DirEntry is one ReadDir result.
type DirEntry = Info

// File is an open file handle. Handles share the FS lock; they are safe for
// concurrent use.
type File struct {
	fs   *FS
	ino  uint64
	path string
}

// Create creates (or truncates) a file at path.
func (fs *FS) Create(path string) (*File, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	parentIno, parent, name, err := fs.lookupParent(path)
	if err != nil {
		return nil, err
	}
	entries, err := fs.dirEntries(parent)
	if err != nil {
		return nil, err
	}
	if existing, ok := entries[name]; ok {
		n, err := fs.readInode(existing)
		if err != nil {
			return nil, err
		}
		if n.mode == modeDir {
			return nil, fmt.Errorf("%w: %s", ErrIsDir, path)
		}
		if err := fs.truncateInode(existing, n); err != nil {
			return nil, err
		}
		return &File{fs: fs, ino: existing, path: path}, nil
	}
	ino, err := fs.allocInode(modeFile)
	if err != nil {
		return nil, err
	}
	entries[name] = ino
	if err := fs.writeDir(parentIno, parent, entries); err != nil {
		return nil, err
	}
	return &File{fs: fs, ino: ino, path: path}, nil
}

// Open opens an existing file.
func (fs *FS) Open(path string) (*File, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	ino, n, err := fs.lookup(path)
	if err != nil {
		return nil, err
	}
	if n.mode == modeDir {
		return nil, fmt.Errorf("%w: %s", ErrIsDir, path)
	}
	return &File{fs: fs, ino: ino, path: path}, nil
}

// ReadAt implements io.ReaderAt semantics on the file.
func (f *File) ReadAt(p []byte, off int64) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	n, err := f.fs.readInode(f.ino)
	if err != nil {
		return 0, err
	}
	return f.fs.readAtInode(n, p, off)
}

// WriteAt implements io.WriterAt semantics on the file.
func (f *File) WriteAt(p []byte, off int64) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	n, err := f.fs.readInode(f.ino)
	if err != nil {
		return 0, err
	}
	return f.fs.writeAtInode(f.ino, n, p, off)
}

// Append writes p at the end of the file.
func (f *File) Append(p []byte) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	n, err := f.fs.readInode(f.ino)
	if err != nil {
		return 0, err
	}
	return f.fs.writeAtInode(f.ino, n, p, int64(n.size))
}

// Size returns the current file size.
func (f *File) Size() (uint64, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	n, err := f.fs.readInode(f.ino)
	if err != nil {
		return 0, err
	}
	return n.size, nil
}

// Truncate discards the file's content.
func (f *File) Truncate() error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	n, err := f.fs.readInode(f.ino)
	if err != nil {
		return err
	}
	return f.fs.truncateInode(f.ino, n)
}

// Path returns the path the handle was opened with.
func (f *File) Path() string { return f.path }

// WriteFile creates path with the given content (the checkpoint dump
// operation).
func (fs *FS) WriteFile(path string, data []byte) error {
	f, err := fs.Create(path)
	if err != nil {
		return err
	}
	_, err = f.WriteAt(data, 0)
	return err
}

// ReadFile returns the whole content of path.
func (fs *FS) ReadFile(path string) ([]byte, error) {
	f, err := fs.Open(path)
	if err != nil {
		return nil, err
	}
	size, err := f.Size()
	if err != nil {
		return nil, err
	}
	buf := make([]byte, size)
	if _, err := f.ReadAt(buf, 0); err != nil {
		return nil, err
	}
	return buf, nil
}

// Mkdir creates a directory at path; the parent must exist.
func (fs *FS) Mkdir(path string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	parentIno, parent, name, err := fs.lookupParent(path)
	if err != nil {
		return err
	}
	entries, err := fs.dirEntries(parent)
	if err != nil {
		return err
	}
	if _, exists := entries[name]; exists {
		return fmt.Errorf("%w: %s", ErrExist, path)
	}
	ino, err := fs.allocInode(modeDir)
	if err != nil {
		return err
	}
	entries[name] = ino
	return fs.writeDir(parentIno, parent, entries)
}

// MkdirAll creates path and any missing parents.
func (fs *FS) MkdirAll(path string) error {
	parts, err := splitPath(path)
	if err != nil {
		return err
	}
	cur := ""
	for _, part := range parts {
		cur += "/" + part
		err := fs.Mkdir(cur)
		if err != nil && !errors.Is(err, ErrExist) {
			return err
		}
	}
	return nil
}

// Remove deletes a file or an empty directory.
func (fs *FS) Remove(path string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	parentIno, parent, name, err := fs.lookupParent(path)
	if err != nil {
		return err
	}
	entries, err := fs.dirEntries(parent)
	if err != nil {
		return err
	}
	ino, ok := entries[name]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotExist, path)
	}
	n, err := fs.readInode(ino)
	if err != nil {
		return err
	}
	if n.mode == modeDir {
		children, err := fs.dirEntries(n)
		if err != nil {
			return err
		}
		if len(children) > 0 {
			return fmt.Errorf("%w: %s", ErrNotEmpty, path)
		}
	}
	if err := fs.truncateInode(ino, n); err != nil {
		return err
	}
	if err := fs.writeInode(ino, &inode{}); err != nil { // free the inode
		return err
	}
	delete(entries, name)
	return fs.writeDir(parentIno, parent, entries)
}

// ReadDir lists a directory.
func (fs *FS) ReadDir(path string) ([]DirEntry, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	_, n, err := fs.lookup(path)
	if err != nil {
		return nil, err
	}
	if n.mode != modeDir {
		return nil, fmt.Errorf("%w: %s", ErrNotDir, path)
	}
	entries, err := fs.dirEntries(n)
	if err != nil {
		return nil, err
	}
	out := make([]DirEntry, 0, len(entries))
	for name, ino := range entries {
		child, err := fs.readInode(ino)
		if err != nil {
			return nil, err
		}
		out = append(out, DirEntry{
			Name:  name,
			Size:  child.size,
			IsDir: child.mode == modeDir,
			Inode: ino,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// Stat returns metadata for path.
func (fs *FS) Stat(path string) (Info, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	ino, n, err := fs.lookup(path)
	if err != nil {
		return Info{}, err
	}
	name := path
	if idx := strings.LastIndex(path, "/"); idx >= 0 && idx+1 < len(path) {
		name = path[idx+1:]
	}
	return Info{Name: name, Size: n.size, IsDir: n.mode == modeDir, Inode: ino}, nil
}

// Sync flushes the device (all metadata is already write-through).
func (fs *FS) Sync() error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if err := fs.flushBitmap(); err != nil {
		return err
	}
	return fs.dev.Flush()
}

// Fsck verifies file system invariants: every allocated block is reachable
// from exactly one inode (or is metadata), every reachable block is marked
// allocated, and directory entries point to live inodes.
func (fs *FS) Fsck() error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	owner := make(map[uint64]uint64) // block -> inode
	var walkErrs []string
	for ino := uint64(1); ino < fs.nInodes; ino++ {
		n, err := fs.readInode(ino)
		if err != nil {
			return err
		}
		if n.mode == modeFree {
			continue
		}
		err = fs.forEachBlock(n, func(b uint64, _ bool) error {
			if b < fs.dataStart || b >= fs.nBlocks {
				walkErrs = append(walkErrs, fmt.Sprintf("inode %d references out-of-range block %d", ino, b))
				return nil
			}
			if prev, dup := owner[b]; dup {
				walkErrs = append(walkErrs, fmt.Sprintf("block %d owned by inodes %d and %d", b, prev, ino))
				return nil
			}
			owner[b] = ino
			if fs.bitmap[b/8]&(1<<(b%8)) == 0 {
				walkErrs = append(walkErrs, fmt.Sprintf("block %d in use by inode %d but marked free", b, ino))
			}
			return nil
		})
		if err != nil {
			return err
		}
	}
	// Every allocated data block must have an owner.
	for b := fs.dataStart; b < fs.nBlocks; b++ {
		if fs.bitmap[b/8]&(1<<(b%8)) != 0 {
			if _, ok := owner[b]; !ok {
				walkErrs = append(walkErrs, fmt.Sprintf("block %d allocated but unreachable", b))
			}
		}
	}
	// Directory entries must reference live inodes.
	var checkDir func(ino uint64) error
	seen := make(map[uint64]bool)
	checkDir = func(ino uint64) error {
		if seen[ino] {
			walkErrs = append(walkErrs, fmt.Sprintf("directory cycle at inode %d", ino))
			return nil
		}
		seen[ino] = true
		n, err := fs.readInode(ino)
		if err != nil {
			return err
		}
		entries, err := fs.dirEntries(n)
		if err != nil {
			return err
		}
		for name, child := range entries {
			cn, err := fs.readInode(child)
			if err != nil {
				return err
			}
			if cn.mode == modeFree {
				walkErrs = append(walkErrs, fmt.Sprintf("entry %q references free inode %d", name, child))
				continue
			}
			if cn.mode == modeDir {
				if err := checkDir(child); err != nil {
					return err
				}
			}
		}
		return nil
	}
	if err := checkDir(rootInode); err != nil {
		return err
	}
	if len(walkErrs) > 0 {
		return fmt.Errorf("guestfs: fsck found %d problems: %s", len(walkErrs), strings.Join(walkErrs, "; "))
	}
	return nil
}
