// Package guestfs implements the guest operating system's file system: a
// small Unix-like block file system (superblock, block bitmap, inode table,
// directories, double-indirect addressing) living on a vdisk.Device.
//
// In the paper, processes dump their checkpoint state into files of the
// guest file system, and the disk-image snapshot captures those blocks.
// Running a real file system on the virtual disk is what makes snapshot
// sizes honest: file writes dirty data blocks, bitmap blocks, inode blocks
// and directory blocks, exactly the "minor updates" the paper measures on
// top of the raw checkpoint data.
//
// All writes are write-through to the device, so a disk snapshot taken after
// Sync is always consistent.
package guestfs

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"blobcr/internal/vdisk"
)

const (
	magic = 0x6266E257 // "blobcr fs"

	// DefaultBlockSize is a common guest file system block size.
	DefaultBlockSize = 4096

	inodeSize    = 128
	numDirect    = 12
	rootInode    = 1
	modeFree     = 0
	modeFile     = 1
	modeDir      = 2
	maxNameLen   = 255
	dirEntryBase = 8 + 2 // inode + nameLen
)

// Errors.
var (
	ErrNotExist    = errors.New("guestfs: no such file or directory")
	ErrExist       = errors.New("guestfs: file exists")
	ErrNotDir      = errors.New("guestfs: not a directory")
	ErrIsDir       = errors.New("guestfs: is a directory")
	ErrNotEmpty    = errors.New("guestfs: directory not empty")
	ErrNoSpace     = errors.New("guestfs: no space left on device")
	ErrNoInodes    = errors.New("guestfs: out of inodes")
	ErrBadFS       = errors.New("guestfs: not a valid file system")
	ErrNameTooLong = errors.New("guestfs: name too long")
)

// inode is the on-disk per-file record.
type inode struct {
	mode      uint16
	nlink     uint16
	size      uint64
	direct    [numDirect]uint64
	indirect  uint64 // block of block pointers
	dindirect uint64 // block of pointers to indirect blocks
}

// FS is a mounted file system.
type FS struct {
	mu  sync.Mutex
	dev vdisk.Device

	blockSize   uint64
	nBlocks     uint64
	nInodes     uint64
	bitmapStart uint64 // block index
	bitmapBlks  uint64
	itabStart   uint64
	itabBlks    uint64
	dataStart   uint64

	bitmap     []byte // in-memory copy, write-through
	allocHint  uint64
	freeBlocks uint64
}

// ptrsPerBlock returns how many block pointers fit one block.
func (fs *FS) ptrsPerBlock() uint64 { return fs.blockSize / 8 }

// MaxFileSize returns the largest file this FS can hold.
func (fs *FS) MaxFileSize() uint64 {
	p := fs.ptrsPerBlock()
	return (numDirect + p + p*p) * fs.blockSize
}

// Mkfs formats dev with the given block size (0 selects DefaultBlockSize)
// and returns the mounted file system.
func Mkfs(dev vdisk.Device, blockSize int) (*FS, error) {
	if blockSize == 0 {
		blockSize = DefaultBlockSize
	}
	if blockSize < 512 || blockSize&(blockSize-1) != 0 {
		return nil, fmt.Errorf("guestfs: block size %d must be a power of two >= 512", blockSize)
	}
	bs := uint64(blockSize)
	total := uint64(dev.Size()) / bs
	if total < 8 {
		return nil, fmt.Errorf("guestfs: device too small (%d blocks)", total)
	}
	fs := &FS{dev: dev, blockSize: bs, nBlocks: total}
	// Inodes: 1 per 8 blocks, at least 64.
	fs.nInodes = total / 8
	if fs.nInodes < 64 {
		fs.nInodes = 64
	}
	fs.bitmapStart = 1
	fs.bitmapBlks = ceil(total, bs*8)
	fs.itabStart = fs.bitmapStart + fs.bitmapBlks
	fs.itabBlks = ceil(fs.nInodes*inodeSize, bs)
	fs.dataStart = fs.itabStart + fs.itabBlks
	if fs.dataStart >= total {
		return nil, fmt.Errorf("guestfs: device too small for metadata (%d metadata blocks, %d total)", fs.dataStart, total)
	}

	// Zero the metadata region.
	zeroBlk := make([]byte, bs)
	for b := uint64(0); b < fs.dataStart; b++ {
		if _, err := dev.WriteAt(zeroBlk, int64(b*bs)); err != nil {
			return nil, err
		}
	}
	fs.bitmap = make([]byte, fs.bitmapBlks*bs)
	// Mark metadata blocks as used.
	for b := uint64(0); b < fs.dataStart; b++ {
		fs.bitmap[b/8] |= 1 << (b % 8)
	}
	fs.freeBlocks = total - fs.dataStart
	if err := fs.flushBitmap(); err != nil {
		return nil, err
	}

	// Root directory: inode 1, empty.
	root := inode{mode: modeDir, nlink: 2}
	if err := fs.writeInode(rootInode, &root); err != nil {
		return nil, err
	}
	if err := fs.writeSuper(); err != nil {
		return nil, err
	}
	return fs, nil
}

// Mount opens an existing file system on dev.
func Mount(dev vdisk.Device) (*FS, error) {
	hdr := make([]byte, 128)
	if err := vdisk.ReadFull(dev, hdr, 0); err != nil {
		return nil, fmt.Errorf("%w: read superblock: %v", ErrBadFS, err)
	}
	le := binary.LittleEndian
	if le.Uint32(hdr[0:]) != magic {
		return nil, fmt.Errorf("%w: bad magic", ErrBadFS)
	}
	fs := &FS{
		dev:         dev,
		blockSize:   le.Uint64(hdr[8:]),
		nBlocks:     le.Uint64(hdr[16:]),
		nInodes:     le.Uint64(hdr[24:]),
		bitmapStart: le.Uint64(hdr[32:]),
		bitmapBlks:  le.Uint64(hdr[40:]),
		itabStart:   le.Uint64(hdr[48:]),
		itabBlks:    le.Uint64(hdr[56:]),
		dataStart:   le.Uint64(hdr[64:]),
	}
	if fs.blockSize < 512 || fs.blockSize&(fs.blockSize-1) != 0 || fs.nBlocks == 0 {
		return nil, fmt.Errorf("%w: implausible geometry", ErrBadFS)
	}
	fs.bitmap = make([]byte, fs.bitmapBlks*fs.blockSize)
	if err := vdisk.ReadFull(dev, fs.bitmap, int64(fs.bitmapStart*fs.blockSize)); err != nil {
		return nil, fmt.Errorf("%w: read bitmap: %v", ErrBadFS, err)
	}
	for b := uint64(0); b < fs.nBlocks; b++ {
		if fs.bitmap[b/8]&(1<<(b%8)) == 0 {
			fs.freeBlocks++
		}
	}
	return fs, nil
}

func (fs *FS) writeSuper() error {
	hdr := make([]byte, 128)
	le := binary.LittleEndian
	le.PutUint32(hdr[0:], magic)
	le.PutUint64(hdr[8:], fs.blockSize)
	le.PutUint64(hdr[16:], fs.nBlocks)
	le.PutUint64(hdr[24:], fs.nInodes)
	le.PutUint64(hdr[32:], fs.bitmapStart)
	le.PutUint64(hdr[40:], fs.bitmapBlks)
	le.PutUint64(hdr[48:], fs.itabStart)
	le.PutUint64(hdr[56:], fs.itabBlks)
	le.PutUint64(hdr[64:], fs.dataStart)
	_, err := fs.dev.WriteAt(hdr, 0)
	return err
}

func ceil(a, b uint64) uint64 { return (a + b - 1) / b }

// --- bitmap / allocation ---

func (fs *FS) flushBitmap() error {
	_, err := fs.dev.WriteAt(fs.bitmap, int64(fs.bitmapStart*fs.blockSize))
	return err
}

// flushBitmapBlock persists the single bitmap block containing bit b.
func (fs *FS) flushBitmapBlock(b uint64) error {
	blk := (b / 8) / fs.blockSize
	off := fs.bitmapStart*fs.blockSize + blk*fs.blockSize
	_, err := fs.dev.WriteAt(fs.bitmap[blk*fs.blockSize:(blk+1)*fs.blockSize], int64(off))
	return err
}

// allocBlock allocates one zeroed data block.
func (fs *FS) allocBlock() (uint64, error) {
	if fs.freeBlocks == 0 {
		return 0, ErrNoSpace
	}
	for i := uint64(0); i < fs.nBlocks; i++ {
		b := (fs.allocHint + i) % fs.nBlocks
		if b < fs.dataStart {
			continue
		}
		if fs.bitmap[b/8]&(1<<(b%8)) == 0 {
			fs.bitmap[b/8] |= 1 << (b % 8)
			fs.allocHint = b + 1
			fs.freeBlocks--
			if err := fs.flushBitmapBlock(b); err != nil {
				return 0, err
			}
			// Fresh blocks must read as zeros.
			zero := make([]byte, fs.blockSize)
			if _, err := fs.dev.WriteAt(zero, int64(b*fs.blockSize)); err != nil {
				return 0, err
			}
			return b, nil
		}
	}
	return 0, ErrNoSpace
}

func (fs *FS) freeBlock(b uint64) error {
	if b < fs.dataStart || b >= fs.nBlocks {
		return fmt.Errorf("guestfs: freeing invalid block %d", b)
	}
	fs.bitmap[b/8] &^= 1 << (b % 8)
	fs.freeBlocks++
	return fs.flushBitmapBlock(b)
}

// FreeBlocks reports the number of free data blocks.
func (fs *FS) FreeBlocks() uint64 {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.freeBlocks
}

// BlockSize returns the file system block size.
func (fs *FS) BlockSize() uint64 { return fs.blockSize }

// --- inode table ---

func (fs *FS) inodeOffset(ino uint64) int64 {
	return int64(fs.itabStart*fs.blockSize + ino*inodeSize)
}

func (fs *FS) readInode(ino uint64) (*inode, error) {
	if ino == 0 || ino >= fs.nInodes {
		return nil, fmt.Errorf("guestfs: invalid inode %d", ino)
	}
	buf := make([]byte, inodeSize)
	if err := vdisk.ReadFull(fs.dev, buf, fs.inodeOffset(ino)); err != nil {
		return nil, err
	}
	le := binary.LittleEndian
	n := &inode{
		mode:  le.Uint16(buf[0:]),
		nlink: le.Uint16(buf[2:]),
		size:  le.Uint64(buf[8:]),
	}
	for i := 0; i < numDirect; i++ {
		n.direct[i] = le.Uint64(buf[16+i*8:])
	}
	n.indirect = le.Uint64(buf[16+numDirect*8:])
	n.dindirect = le.Uint64(buf[24+numDirect*8:])
	return n, nil
}

func (fs *FS) writeInode(ino uint64, n *inode) error {
	if ino == 0 || ino >= fs.nInodes {
		return fmt.Errorf("guestfs: invalid inode %d", ino)
	}
	buf := make([]byte, inodeSize)
	le := binary.LittleEndian
	le.PutUint16(buf[0:], n.mode)
	le.PutUint16(buf[2:], n.nlink)
	le.PutUint64(buf[8:], n.size)
	for i := 0; i < numDirect; i++ {
		le.PutUint64(buf[16+i*8:], n.direct[i])
	}
	le.PutUint64(buf[16+numDirect*8:], n.indirect)
	le.PutUint64(buf[24+numDirect*8:], n.dindirect)
	_, err := fs.dev.WriteAt(buf, fs.inodeOffset(ino))
	return err
}

// allocInode finds a free inode slot.
func (fs *FS) allocInode(mode uint16) (uint64, error) {
	for ino := uint64(1); ino < fs.nInodes; ino++ {
		n, err := fs.readInode(ino)
		if err != nil {
			return 0, err
		}
		if n.mode == modeFree {
			nl := uint16(1)
			if mode == modeDir {
				nl = 2
			}
			if err := fs.writeInode(ino, &inode{mode: mode, nlink: nl}); err != nil {
				return 0, err
			}
			return ino, nil
		}
	}
	return 0, ErrNoInodes
}

// --- block mapping (direct / indirect / double indirect) ---

// readPtrBlock loads a block of block pointers.
func (fs *FS) readPtrBlock(b uint64) ([]uint64, error) {
	buf := make([]byte, fs.blockSize)
	if err := vdisk.ReadFull(fs.dev, buf, int64(b*fs.blockSize)); err != nil {
		return nil, err
	}
	ptrs := make([]uint64, fs.ptrsPerBlock())
	for i := range ptrs {
		ptrs[i] = binary.LittleEndian.Uint64(buf[i*8:])
	}
	return ptrs, nil
}

func (fs *FS) writePtr(b uint64, idx uint64, val uint64) error {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], val)
	_, err := fs.dev.WriteAt(buf[:], int64(b*fs.blockSize+idx*8))
	return err
}

// blockFor maps a file block index to a device block, allocating the path
// if alloc is true. Returns 0 when the block is a hole and alloc is false.
func (fs *FS) blockFor(n *inode, ino uint64, fileBlk uint64, alloc bool) (uint64, error) {
	p := fs.ptrsPerBlock()
	switch {
	case fileBlk < numDirect:
		if n.direct[fileBlk] == 0 {
			if !alloc {
				return 0, nil
			}
			b, err := fs.allocBlock()
			if err != nil {
				return 0, err
			}
			n.direct[fileBlk] = b
			if err := fs.writeInode(ino, n); err != nil {
				return 0, err
			}
		}
		return n.direct[fileBlk], nil

	case fileBlk < numDirect+p:
		idx := fileBlk - numDirect
		if n.indirect == 0 {
			if !alloc {
				return 0, nil
			}
			b, err := fs.allocBlock()
			if err != nil {
				return 0, err
			}
			n.indirect = b
			if err := fs.writeInode(ino, n); err != nil {
				return 0, err
			}
		}
		ptrs, err := fs.readPtrBlock(n.indirect)
		if err != nil {
			return 0, err
		}
		if ptrs[idx] == 0 {
			if !alloc {
				return 0, nil
			}
			b, err := fs.allocBlock()
			if err != nil {
				return 0, err
			}
			if err := fs.writePtr(n.indirect, idx, b); err != nil {
				return 0, err
			}
			return b, nil
		}
		return ptrs[idx], nil

	case fileBlk < numDirect+p+p*p:
		idx := fileBlk - numDirect - p
		outer, innerIdx := idx/p, idx%p
		if n.dindirect == 0 {
			if !alloc {
				return 0, nil
			}
			b, err := fs.allocBlock()
			if err != nil {
				return 0, err
			}
			n.dindirect = b
			if err := fs.writeInode(ino, n); err != nil {
				return 0, err
			}
		}
		l1, err := fs.readPtrBlock(n.dindirect)
		if err != nil {
			return 0, err
		}
		indBlk := l1[outer]
		if indBlk == 0 {
			if !alloc {
				return 0, nil
			}
			b, err := fs.allocBlock()
			if err != nil {
				return 0, err
			}
			indBlk = b
			if err := fs.writePtr(n.dindirect, outer, b); err != nil {
				return 0, err
			}
		}
		l2, err := fs.readPtrBlock(indBlk)
		if err != nil {
			return 0, err
		}
		if l2[innerIdx] == 0 {
			if !alloc {
				return 0, nil
			}
			b, err := fs.allocBlock()
			if err != nil {
				return 0, err
			}
			if err := fs.writePtr(indBlk, innerIdx, b); err != nil {
				return 0, err
			}
			return b, nil
		}
		return l2[innerIdx], nil

	default:
		return 0, fmt.Errorf("guestfs: file block %d exceeds maximum file size", fileBlk)
	}
}

// forEachBlock visits every allocated data/pointer block of an inode,
// calling fn(block, isMeta). Used by truncate and fsck.
func (fs *FS) forEachBlock(n *inode, fn func(b uint64, isMeta bool) error) error {
	for _, b := range n.direct {
		if b != 0 {
			if err := fn(b, false); err != nil {
				return err
			}
		}
	}
	if n.indirect != 0 {
		if err := fn(n.indirect, true); err != nil {
			return err
		}
		ptrs, err := fs.readPtrBlock(n.indirect)
		if err != nil {
			return err
		}
		for _, b := range ptrs {
			if b != 0 {
				if err := fn(b, false); err != nil {
					return err
				}
			}
		}
	}
	if n.dindirect != 0 {
		if err := fn(n.dindirect, true); err != nil {
			return err
		}
		l1, err := fs.readPtrBlock(n.dindirect)
		if err != nil {
			return err
		}
		for _, ind := range l1 {
			if ind == 0 {
				continue
			}
			if err := fn(ind, true); err != nil {
				return err
			}
			l2, err := fs.readPtrBlock(ind)
			if err != nil {
				return err
			}
			for _, b := range l2 {
				if b != 0 {
					if err := fn(b, false); err != nil {
						return err
					}
				}
			}
		}
	}
	return nil
}

// truncateInode frees all blocks of an inode and zeroes its size.
func (fs *FS) truncateInode(ino uint64, n *inode) error {
	err := fs.forEachBlock(n, func(b uint64, _ bool) error {
		return fs.freeBlock(b)
	})
	if err != nil {
		return err
	}
	n.size = 0
	n.direct = [numDirect]uint64{}
	n.indirect = 0
	n.dindirect = 0
	return fs.writeInode(ino, n)
}

// --- raw file I/O on inodes (caller holds fs.mu) ---

func (fs *FS) readAtInode(n *inode, p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, vdisk.ErrOutOfRange
	}
	if uint64(off) >= n.size {
		return 0, nil
	}
	total := len(p)
	if uint64(off)+uint64(total) > n.size {
		total = int(n.size - uint64(off))
	}
	read := 0
	for read < total {
		o := uint64(off) + uint64(read)
		fileBlk := o / fs.blockSize
		inner := o % fs.blockSize
		cnt := fs.blockSize - inner
		if rem := uint64(total - read); cnt > rem {
			cnt = rem
		}
		b, err := fs.blockFor(n, 0, fileBlk, false)
		if err != nil {
			return read, err
		}
		dst := p[read : read+int(cnt)]
		if b == 0 {
			for i := range dst {
				dst[i] = 0
			}
		} else {
			if err := vdisk.ReadFull(fs.dev, dst, int64(b*fs.blockSize+inner)); err != nil {
				return read, err
			}
		}
		read += int(cnt)
	}
	return read, nil
}

func (fs *FS) writeAtInode(ino uint64, n *inode, p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, vdisk.ErrOutOfRange
	}
	if uint64(off)+uint64(len(p)) > fs.MaxFileSize() {
		return 0, fmt.Errorf("guestfs: write exceeds maximum file size")
	}
	written := 0
	for written < len(p) {
		o := uint64(off) + uint64(written)
		fileBlk := o / fs.blockSize
		inner := o % fs.blockSize
		cnt := fs.blockSize - inner
		if rem := uint64(len(p) - written); cnt > rem {
			cnt = rem
		}
		b, err := fs.blockFor(n, ino, fileBlk, true)
		if err != nil {
			return written, err
		}
		if _, err := fs.dev.WriteAt(p[written:written+int(cnt)], int64(b*fs.blockSize+inner)); err != nil {
			return written, err
		}
		written += int(cnt)
	}
	end := uint64(off) + uint64(len(p))
	if end > n.size {
		n.size = end
		if err := fs.writeInode(ino, n); err != nil {
			return written, err
		}
	}
	return written, nil
}

// --- directories ---

// dirEntries decodes a directory's content. Caller holds fs.mu.
func (fs *FS) dirEntries(n *inode) (map[string]uint64, error) {
	buf := make([]byte, n.size)
	if _, err := fs.readAtInode(n, buf, 0); err != nil {
		return nil, err
	}
	entries := make(map[string]uint64)
	le := binary.LittleEndian
	off := 0
	for off+dirEntryBase <= len(buf) {
		ino := le.Uint64(buf[off:])
		nameLen := int(le.Uint16(buf[off+8:]))
		off += dirEntryBase
		if off+nameLen > len(buf) {
			return nil, fmt.Errorf("%w: corrupt directory entry", ErrBadFS)
		}
		name := string(buf[off : off+nameLen])
		off += nameLen
		if ino != 0 {
			entries[name] = ino
		}
	}
	return entries, nil
}

// writeDir re-encodes a directory's entries (rewrite semantics).
func (fs *FS) writeDir(ino uint64, n *inode, entries map[string]uint64) error {
	names := make([]string, 0, len(entries))
	for name := range entries {
		names = append(names, name)
	}
	sort.Strings(names)
	var buf []byte
	var tmp [dirEntryBase]byte
	le := binary.LittleEndian
	for _, name := range names {
		le.PutUint64(tmp[0:], entries[name])
		le.PutUint16(tmp[8:], uint16(len(name)))
		buf = append(buf, tmp[:]...)
		buf = append(buf, name...)
	}
	// Shrink: free old blocks if the directory shrank past block boundaries.
	if uint64(len(buf)) < n.size {
		if err := fs.truncateInode(ino, n); err != nil {
			return err
		}
	}
	if len(buf) == 0 {
		n.size = 0
		return fs.writeInode(ino, n)
	}
	if _, err := fs.writeAtInode(ino, n, buf, 0); err != nil {
		return err
	}
	if uint64(len(buf)) != n.size {
		n.size = uint64(len(buf))
		return fs.writeInode(ino, n)
	}
	return nil
}

// splitPath normalizes a path into components.
func splitPath(path string) ([]string, error) {
	if !strings.HasPrefix(path, "/") {
		return nil, fmt.Errorf("guestfs: path %q is not absolute", path)
	}
	var parts []string
	for _, c := range strings.Split(path, "/") {
		switch c {
		case "", ".":
		case "..":
			return nil, fmt.Errorf("guestfs: path %q contains ..", path)
		default:
			if len(c) > maxNameLen {
				return nil, ErrNameTooLong
			}
			parts = append(parts, c)
		}
	}
	return parts, nil
}

// lookup resolves a path to an inode number. Caller holds fs.mu.
func (fs *FS) lookup(path string) (uint64, *inode, error) {
	parts, err := splitPath(path)
	if err != nil {
		return 0, nil, err
	}
	ino := uint64(rootInode)
	n, err := fs.readInode(ino)
	if err != nil {
		return 0, nil, err
	}
	for i, part := range parts {
		if n.mode != modeDir {
			return 0, nil, fmt.Errorf("%w: %s", ErrNotDir, strings.Join(parts[:i], "/"))
		}
		entries, err := fs.dirEntries(n)
		if err != nil {
			return 0, nil, err
		}
		child, ok := entries[part]
		if !ok {
			return 0, nil, fmt.Errorf("%w: %s", ErrNotExist, path)
		}
		ino = child
		n, err = fs.readInode(ino)
		if err != nil {
			return 0, nil, err
		}
	}
	return ino, n, nil
}

// lookupParent resolves the parent directory of path and the final name.
func (fs *FS) lookupParent(path string) (uint64, *inode, string, error) {
	parts, err := splitPath(path)
	if err != nil {
		return 0, nil, "", err
	}
	if len(parts) == 0 {
		return 0, nil, "", fmt.Errorf("guestfs: %q has no parent", path)
	}
	dir := "/" + strings.Join(parts[:len(parts)-1], "/")
	ino, n, err := fs.lookup(dir)
	if err != nil {
		return 0, nil, "", err
	}
	if n.mode != modeDir {
		return 0, nil, "", fmt.Errorf("%w: %s", ErrNotDir, dir)
	}
	return ino, n, parts[len(parts)-1], nil
}
