// Package cm1 implements a CM1-like atmospheric model: a three-dimensional,
// time-dependent finite-difference simulation used as the paper's real-life
// application case study (Section 4.4).
//
// The model follows CM1's computational structure: a 3D spatial domain of
// prognostic variables (wind components, potential temperature, pressure,
// moisture) is decomposed into per-process subdomains of a fixed horizontal
// size (weak scaling, 50x50 in the paper); every iteration each process
// updates its subdomain from the governing equations and exchanges the
// borders with its neighbours over MPI.
//
// Two properties matter for checkpoint-restart and are reproduced exactly:
//
//   - application-level checkpoints dump only the prognostic fields into
//     per-process files (CM1's restart files);
//   - the process additionally allocates work arrays several times the size
//     of the prognostic state, so a blcr process-level dump is much larger
//     than the application-level one (Table 1: 127 MB vs 52 MB per VM).
//
// The field memory is allocated from the rank's blcr process image, so
// process-level checkpointing captures it transparently.
package cm1

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"blobcr/internal/blcr"
	"blobcr/internal/guestfs"
	"blobcr/internal/mpi"
)

// Config describes a CM1 run.
type Config struct {
	// NX, NY are the per-process horizontal subdomain size (weak scaling).
	NX, NY int
	// NZ is the number of vertical levels.
	NZ int
	// Vars is the number of prognostic variables per grid point.
	Vars int
	// WorkFactor is how much scratch memory the solver allocates relative
	// to the prognostic state (CM1 keeps tendency arrays, advection
	// buffers, etc.). Typical value 2.
	WorkFactor int
	// Summary output is written every SummaryEvery iterations (0 = never).
	SummaryEvery int
}

// DefaultConfig matches the paper's setup: 50x50 subdomains.
func DefaultConfig() Config {
	return Config{NX: 50, NY: 50, NZ: 40, Vars: 8, WorkFactor: 2, SummaryEvery: 10}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.NX < 3 || c.NY < 3 || c.NZ < 1 || c.Vars < 1 {
		return errors.New("cm1: subdomain too small")
	}
	return nil
}

// StateBytes returns the prognostic state size per process.
func (c Config) StateBytes() int { return c.NX * c.NY * c.NZ * c.Vars * 8 }

// AllocBytes returns the total process allocation (state + work arrays).
func (c Config) AllocBytes() int { return (1 + c.WorkFactor) * c.StateBytes() }

// Sim is one rank's simulation state.
type Sim struct {
	cfg  Config
	comm *mpi.Comm
	proc *blcr.Process

	field []byte // prognostic state, lives in the process image
	work  []byte // scratch arrays, also in the process image
	iter  uint64
}

// New creates a rank's simulation, allocating its memory from proc so a
// blcr dump captures it. The initial condition is a deterministic warm
// bubble perturbation (a stand-in for the Bryan & Rotunno hurricane init).
func New(cfg Config, comm *mpi.Comm, proc *blcr.Process) (*Sim, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &Sim{
		cfg:   cfg,
		comm:  comm,
		proc:  proc,
		field: proc.Alloc("cm1.field", cfg.StateBytes()),
		work:  proc.Alloc("cm1.work", cfg.WorkFactor*cfg.StateBytes()),
	}
	s.initialize()
	return s, nil
}

// cell computes the byte offset of (i,j,k,v).
func (s *Sim) cell(i, j, k, v int) int {
	c := s.cfg
	return 8 * (((k*c.NY+j)*c.NX+i)*c.Vars + v)
}

// Get reads one field value.
func (s *Sim) Get(i, j, k, v int) float64 {
	return math.Float64frombits(binary.LittleEndian.Uint64(s.field[s.cell(i, j, k, v):]))
}

// Set writes one field value.
func (s *Sim) Set(i, j, k, v int, val float64) {
	binary.LittleEndian.PutUint64(s.field[s.cell(i, j, k, v):], math.Float64bits(val))
}

// Iteration returns the current iteration count.
func (s *Sim) Iteration() uint64 { return s.iter }

// initialize seeds a deterministic perturbation that differs per rank.
func (s *Sim) initialize() {
	c := s.cfg
	rank := float64(s.comm.Rank() + 1)
	for k := 0; k < c.NZ; k++ {
		for j := 0; j < c.NY; j++ {
			for i := 0; i < c.NX; i++ {
				base := 300.0 + 10*math.Sin(rank*0.1+float64(i)*0.2)*math.Cos(float64(j)*0.2)
				for v := 0; v < c.Vars; v++ {
					s.Set(i, j, k, v, base+float64(v)+float64(k)*0.01)
				}
			}
		}
	}
	s.iter = 0
	s.syncRegisters()
}

// syncRegisters stores the iteration counter in the process registers so a
// blcr restore resumes at the right step.
func (s *Sim) syncRegisters() {
	r := s.proc.Registers()
	r.PC = s.iter
	s.proc.SetRegisters(r)
}

// Step advances the model one time step: halo exchange with the left/right
// neighbours (1D decomposition over ranks), then a finite-difference update
// of every interior point.
func (s *Sim) Step() error {
	c := s.cfg
	rank, size := s.comm.Rank(), s.comm.Size()
	tag := int(s.iter % uint64(mpi.MaxAppTag))

	// Halo exchange: send western and eastern boundary columns (all
	// variables, level 0 suffices for coupling in this reduced model).
	west, east := rank-1, rank+1
	sendCol := func(i int) []byte {
		buf := make([]byte, c.NY*8)
		for j := 0; j < c.NY; j++ {
			binary.LittleEndian.PutUint64(buf[j*8:], math.Float64bits(s.Get(i, j, 0, 0)))
		}
		return buf
	}
	if west >= 0 {
		if err := s.comm.Send(west, tag, sendCol(0)); err != nil {
			return err
		}
	}
	if east < size {
		if err := s.comm.Send(east, tag, sendCol(c.NX-1)); err != nil {
			return err
		}
	}
	westHalo := make([]float64, c.NY)
	eastHalo := make([]float64, c.NY)
	if west >= 0 {
		raw, err := s.comm.Recv(west, tag)
		if err != nil {
			return err
		}
		for j := 0; j < c.NY; j++ {
			westHalo[j] = math.Float64frombits(binary.LittleEndian.Uint64(raw[j*8:]))
		}
	}
	if east < size {
		raw, err := s.comm.Recv(east, tag)
		if err != nil {
			return err
		}
		for j := 0; j < c.NY; j++ {
			eastHalo[j] = math.Float64frombits(binary.LittleEndian.Uint64(raw[j*8:]))
		}
	}

	// Finite-difference update: simple diffusion of variable 0 on level 0
	// with the halo coupling, plus a deterministic source term touching
	// every variable so the full state evolves.
	const alpha = 0.1
	prev := make([]float64, c.NX*c.NY)
	for j := 0; j < c.NY; j++ {
		for i := 0; i < c.NX; i++ {
			prev[j*c.NX+i] = s.Get(i, j, 0, 0)
		}
	}
	at := func(i, j int) float64 {
		switch {
		case i < 0:
			if west >= 0 {
				return westHalo[j]
			}
			return prev[j*c.NX]
		case i >= c.NX:
			if east < size {
				return eastHalo[j]
			}
			return prev[j*c.NX+c.NX-1]
		default:
			return prev[j*c.NX+i]
		}
	}
	for j := 0; j < c.NY; j++ {
		jm, jp := j-1, j+1
		if jm < 0 {
			jm = 0
		}
		if jp >= c.NY {
			jp = c.NY - 1
		}
		for i := 0; i < c.NX; i++ {
			lap := at(i-1, j) + at(i+1, j) + prev[jm*c.NX+i] + prev[jp*c.NX+i] - 4*prev[j*c.NX+i]
			s.Set(i, j, 0, 0, prev[j*c.NX+i]+alpha*lap)
		}
	}
	// Source term on the remaining variables (kept cheap: one column).
	for k := 0; k < c.NZ; k++ {
		for v := 1; v < c.Vars; v++ {
			s.Set(0, 0, k, v, s.Get(0, 0, k, v)+1e-6)
		}
	}
	s.iter++
	s.syncRegisters()
	return nil
}

// Checksum returns a deterministic digest of the prognostic state, used by
// tests to prove restarts are bit-exact.
func (s *Sim) Checksum() uint64 {
	var h uint64 = 1469598103934665603
	for _, b := range s.field {
		h ^= uint64(b)
		h *= 1099511628211
	}
	return h
}

// ckptMagic guards checkpoint files.
const ckptMagic = 0x434D3143 // "CM1C"

// WriteCheckpoint dumps the prognostic state (and only it — CM1's restart
// files hold the useful fields, not the work arrays) into the guest file
// system.
func (s *Sim) WriteCheckpoint(fs *guestfs.FS, path string) error {
	hdr := make([]byte, 24)
	binary.LittleEndian.PutUint32(hdr[0:], ckptMagic)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(s.comm.Rank()))
	binary.LittleEndian.PutUint64(hdr[8:], s.iter)
	binary.LittleEndian.PutUint64(hdr[16:], uint64(len(s.field)))
	f, err := fs.Create(path)
	if err != nil {
		return fmt.Errorf("cm1: checkpoint %s: %w", path, err)
	}
	if _, err := f.WriteAt(hdr, 0); err != nil {
		return err
	}
	if _, err := f.WriteAt(s.field, int64(len(hdr))); err != nil {
		return err
	}
	return nil
}

// ReadCheckpoint restores the prognostic state from a checkpoint file.
func (s *Sim) ReadCheckpoint(fs *guestfs.FS, path string) error {
	raw, err := fs.ReadFile(path)
	if err != nil {
		return fmt.Errorf("cm1: read checkpoint %s: %w", path, err)
	}
	if len(raw) < 24 || binary.LittleEndian.Uint32(raw[0:]) != ckptMagic {
		return fmt.Errorf("cm1: %s is not a CM1 checkpoint", path)
	}
	if got := binary.LittleEndian.Uint32(raw[4:]); int(got) != s.comm.Rank() {
		return fmt.Errorf("cm1: checkpoint %s belongs to rank %d, not %d", path, got, s.comm.Rank())
	}
	n := binary.LittleEndian.Uint64(raw[16:])
	if n != uint64(len(s.field)) || uint64(len(raw)-24) < n {
		return fmt.Errorf("cm1: checkpoint %s has wrong field size", path)
	}
	copy(s.field, raw[24:24+n])
	s.iter = binary.LittleEndian.Uint64(raw[8:])
	s.syncRegisters()
	return nil
}

// ResumeFromProcess rebuilds a Sim around an existing (blcr-restored)
// process image: the field and work arenas are adopted rather than
// reinitialized, and the iteration counter comes from the registers.
func ResumeFromProcess(cfg Config, comm *mpi.Comm, proc *blcr.Process) (*Sim, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	field, ok := proc.Arena("cm1.field")
	if !ok || len(field) != cfg.StateBytes() {
		return nil, errors.New("cm1: process image has no matching field arena")
	}
	work, ok := proc.Arena("cm1.work")
	if !ok {
		return nil, errors.New("cm1: process image has no work arena")
	}
	return &Sim{
		cfg:   cfg,
		comm:  comm,
		proc:  proc,
		field: field,
		work:  work,
		iter:  proc.Registers().PC,
	}, nil
}

// WriteSummary writes the periodic intermediate summary file (the paper's
// "summary information about the subdomains"): per-level means of variable
// 0, appended to a per-rank file.
func (s *Sim) WriteSummary(fs *guestfs.FS, path string) error {
	c := s.cfg
	line := make([]byte, 0, 16+8*c.NZ)
	var hdr [16]byte
	binary.LittleEndian.PutUint64(hdr[0:], s.iter)
	binary.LittleEndian.PutUint64(hdr[8:], uint64(c.NZ))
	line = append(line, hdr[:]...)
	for k := 0; k < c.NZ; k++ {
		var sum float64
		for j := 0; j < c.NY; j++ {
			for i := 0; i < c.NX; i++ {
				sum += s.Get(i, j, k, 0)
			}
		}
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(sum/float64(c.NX*c.NY)))
		line = append(line, b[:]...)
	}
	f, err := fs.Open(path)
	if err != nil {
		f, err = fs.Create(path)
		if err != nil {
			return err
		}
	}
	_, err = f.Append(line)
	return err
}
