package cm1

import (
	"fmt"
	"testing"

	"blobcr/internal/blcr"
	"blobcr/internal/guestfs"
	"blobcr/internal/mpi"
	"blobcr/internal/vdisk"
)

// smallCfg keeps tests fast.
func smallCfg() Config {
	return Config{NX: 8, NY: 8, NZ: 3, Vars: 2, WorkFactor: 2, SummaryEvery: 5}
}

func newFS(t *testing.T) *guestfs.FS {
	t.Helper()
	fs, err := guestfs.Mkfs(vdisk.NewMem(4<<20), 512)
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

func TestConfigValidation(t *testing.T) {
	bad := Config{NX: 1, NY: 1, NZ: 0, Vars: 0}
	if err := bad.Validate(); err == nil {
		t.Error("invalid config accepted")
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
}

func TestSizeAccounting(t *testing.T) {
	cfg := DefaultConfig()
	want := 50 * 50 * 40 * 8 * 8
	if cfg.StateBytes() != want {
		t.Errorf("StateBytes = %d, want %d", cfg.StateBytes(), want)
	}
	if cfg.AllocBytes() != 3*want {
		t.Errorf("AllocBytes = %d, want %d (state + 2x work)", cfg.AllocBytes(), 3*want)
	}
}

func TestDeterministicEvolution(t *testing.T) {
	run := func() []uint64 {
		var sums []uint64
		err := mpi.Run(4, func(c *mpi.Comm) error {
			s, err := New(smallCfg(), c, blcr.NewProcess(c.Rank()))
			if err != nil {
				return err
			}
			for i := 0; i < 10; i++ {
				if err := s.Step(); err != nil {
					return err
				}
			}
			if c.Rank() == 0 {
				sums = append(sums, s.Checksum())
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return sums
	}
	a, b := run(), run()
	if len(a) != 1 || len(b) != 1 || a[0] != b[0] {
		t.Errorf("evolution not deterministic: %v vs %v", a, b)
	}
}

func TestStepChangesState(t *testing.T) {
	err := mpi.Run(2, func(c *mpi.Comm) error {
		s, err := New(smallCfg(), c, blcr.NewProcess(c.Rank()))
		if err != nil {
			return err
		}
		before := s.Checksum()
		if err := s.Step(); err != nil {
			return err
		}
		if s.Checksum() == before {
			return fmt.Errorf("rank %d: state unchanged after Step", c.Rank())
		}
		if s.Iteration() != 1 {
			return fmt.Errorf("iteration = %d", s.Iteration())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestHaloCouplingPropagates(t *testing.T) {
	// With 2 ranks, rank 0's boundary must influence rank 1 within a few
	// steps: run once with normal init, once with rank 0 perturbed, and
	// check rank 1 diverges.
	run := func(perturb bool) uint64 {
		var sum uint64
		err := mpi.Run(2, func(c *mpi.Comm) error {
			s, err := New(smallCfg(), c, blcr.NewProcess(c.Rank()))
			if err != nil {
				return err
			}
			if perturb && c.Rank() == 0 {
				s.Set(s.cfg.NX-1, 3, 0, 0, 1e6) // eastern boundary spike
			}
			for i := 0; i < 5; i++ {
				if err := s.Step(); err != nil {
					return err
				}
			}
			if c.Rank() == 1 {
				sum = s.Checksum()
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return sum
	}
	if run(false) == run(true) {
		t.Error("rank 0 perturbation did not reach rank 1 (halo exchange broken)")
	}
}

func TestCheckpointRestartBitExact(t *testing.T) {
	cfg := smallCfg()
	type result struct{ mid, end uint64 }
	var straight result
	// Run 10 steps, checkpoint at 5 into a guest FS, keep going to 10.
	fses := make([]*guestfs.FS, 2)
	for i := range fses {
		fses[i] = newFS(t)
	}
	err := mpi.Run(2, func(c *mpi.Comm) error {
		s, err := New(cfg, c, blcr.NewProcess(c.Rank()))
		if err != nil {
			return err
		}
		for i := 0; i < 5; i++ {
			if err := s.Step(); err != nil {
				return err
			}
		}
		if err := s.WriteCheckpoint(fses[c.Rank()], "/ckpt.cm1"); err != nil {
			return err
		}
		if c.Rank() == 0 {
			straight.mid = s.Checksum()
		}
		for i := 0; i < 5; i++ {
			if err := s.Step(); err != nil {
				return err
			}
		}
		if c.Rank() == 0 {
			straight.end = s.Checksum()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	// Restart from the checkpoint files and run the remaining 5 steps: the
	// final state must be bit-identical.
	var restarted result
	err = mpi.Run(2, func(c *mpi.Comm) error {
		s, err := New(cfg, c, blcr.NewProcess(c.Rank()))
		if err != nil {
			return err
		}
		if err := s.ReadCheckpoint(fses[c.Rank()], "/ckpt.cm1"); err != nil {
			return err
		}
		if s.Iteration() != 5 {
			return fmt.Errorf("restored iteration = %d", s.Iteration())
		}
		if c.Rank() == 0 {
			restarted.mid = s.Checksum()
		}
		for i := 0; i < 5; i++ {
			if err := s.Step(); err != nil {
				return err
			}
		}
		if c.Rank() == 0 {
			restarted.end = s.Checksum()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if restarted.mid != straight.mid {
		t.Error("restored state differs from checkpointed state")
	}
	if restarted.end != straight.end {
		t.Error("post-restart evolution diverged (restart not bit-exact)")
	}
}

func TestReadCheckpointValidation(t *testing.T) {
	fs := newFS(t)
	err := mpi.Run(2, func(c *mpi.Comm) error {
		s, err := New(smallCfg(), c, blcr.NewProcess(c.Rank()))
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			if err := fs.WriteFile("/bad", []byte("garbage")); err != nil {
				return err
			}
			if err := s.ReadCheckpoint(fs, "/bad"); err == nil {
				return fmt.Errorf("garbage checkpoint accepted")
			}
			if err := s.WriteCheckpoint(fs, "/r0"); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// A rank-0 checkpoint must be rejected by rank 1.
	err = mpi.Run(2, func(c *mpi.Comm) error {
		s, err := New(smallCfg(), c, blcr.NewProcess(c.Rank()))
		if err != nil {
			return err
		}
		if c.Rank() == 1 {
			if err := s.ReadCheckpoint(fs, "/r0"); err == nil {
				return fmt.Errorf("wrong-rank checkpoint accepted")
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestResumeFromProcessImage(t *testing.T) {
	cfg := smallCfg()
	var wantSum, wantEnd uint64
	var dump []byte
	// Run 4 steps, blcr-dump the process, continue to 8 (reference).
	err := mpi.Run(1, func(c *mpi.Comm) error {
		proc := blcr.NewProcess(0)
		s, err := New(cfg, c, proc)
		if err != nil {
			return err
		}
		for i := 0; i < 4; i++ {
			s.Step()
		}
		wantSum = s.Checksum()
		dump = proc.Checkpoint()
		for i := 0; i < 4; i++ {
			s.Step()
		}
		wantEnd = s.Checksum()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Restore the process image and resume transparently.
	err = mpi.Run(1, func(c *mpi.Comm) error {
		proc, err := blcr.Restore(dump)
		if err != nil {
			return err
		}
		s, err := ResumeFromProcess(cfg, c, proc)
		if err != nil {
			return err
		}
		if s.Iteration() != 4 {
			return fmt.Errorf("resumed at iteration %d", s.Iteration())
		}
		if s.Checksum() != wantSum {
			return fmt.Errorf("resumed state differs")
		}
		for i := 0; i < 4; i++ {
			s.Step()
		}
		if s.Checksum() != wantEnd {
			return fmt.Errorf("post-resume evolution diverged")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Resume with a mismatching config fails.
	err = mpi.Run(1, func(c *mpi.Comm) error {
		proc, _ := blcr.Restore(dump)
		other := cfg
		other.NX = 16
		if _, err := ResumeFromProcess(other, c, proc); err == nil {
			return fmt.Errorf("mismatched config accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSummaryAppends(t *testing.T) {
	fs := newFS(t)
	err := mpi.Run(1, func(c *mpi.Comm) error {
		s, err := New(smallCfg(), c, blcr.NewProcess(0))
		if err != nil {
			return err
		}
		for i := 0; i < 3; i++ {
			s.Step()
			if err := s.WriteSummary(fs, "/summary.dat"); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	info, err := fs.Stat("/summary.dat")
	if err != nil {
		t.Fatal(err)
	}
	perLine := uint64(16 + 8*smallCfg().NZ)
	if info.Size != 3*perLine {
		t.Errorf("summary size = %d, want %d (3 appended records)", info.Size, 3*perLine)
	}
}
