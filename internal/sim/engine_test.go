package sim

import (
	"math"
	"sort"
	"testing"
)

const eps = 1e-6

func almostEqual(a, b float64) bool { return math.Abs(a-b) < 1e-4 }

func TestWaitAdvancesClock(t *testing.T) {
	e := NewEngine()
	var tick float64
	e.Go("waiter", func(p *Proc) {
		p.Wait(1.5)
		tick = p.Now()
	})
	end, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(tick, 1.5) || !almostEqual(end, 1.5) {
		t.Errorf("tick=%v end=%v, want 1.5", tick, end)
	}
}

func TestZeroAndNegativeWait(t *testing.T) {
	e := NewEngine()
	e.Go("p", func(p *Proc) {
		p.Wait(0)
		p.Wait(-3)
	})
	end, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if end != 0 {
		t.Errorf("end = %v, want 0", end)
	}
}

func TestDeterministicOrdering(t *testing.T) {
	run := func() []string {
		e := NewEngine()
		var order []string
		for _, name := range []string{"a", "b", "c", "d"} {
			name := name
			e.Go(name, func(p *Proc) {
				p.Wait(1) // all fire at the same virtual instant
				order = append(order, name)
			})
		}
		if _, err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return order
	}
	first := run()
	for i := 0; i < 5; i++ {
		if got := run(); !equalStrings(got, first) {
			t.Fatalf("run %d order %v != %v", i, got, first)
		}
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestSingleTransferRate(t *testing.T) {
	e := NewEngine()
	disk := NewResource(e, "disk", 100) // 100 B/s
	e.Go("writer", func(p *Proc) {
		p.Transfer(250, disk)
	})
	end, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(end, 2.5) {
		t.Errorf("end = %v, want 2.5", end)
	}
}

func TestFairSharingTwoFlows(t *testing.T) {
	// Two equal flows on one resource: each gets half the bandwidth, both
	// finish at the same time = 2 * size / capacity.
	e := NewEngine()
	disk := NewResource(e, "disk", 100)
	var finish []float64
	for i := 0; i < 2; i++ {
		e.Go("w", func(p *Proc) {
			p.Transfer(100, disk)
			finish = append(finish, p.Now())
		})
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for _, f := range finish {
		if !almostEqual(f, 2.0) {
			t.Errorf("finish = %v, want 2.0", finish)
		}
	}
}

func TestShortFlowReleasesBandwidth(t *testing.T) {
	// Flow A: 300 bytes. Flow B: 100 bytes, starts together. Capacity 100.
	// Phase 1: both at 50 B/s until B finishes at t=2 (B moved 100).
	// Phase 2: A alone at 100 B/s, 200 bytes left -> finishes at t=4.
	e := NewEngine()
	disk := NewResource(e, "disk", 100)
	var aEnd, bEnd float64
	e.Go("a", func(p *Proc) {
		p.Transfer(300, disk)
		aEnd = p.Now()
	})
	e.Go("b", func(p *Proc) {
		p.Transfer(100, disk)
		bEnd = p.Now()
	})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !almostEqual(bEnd, 2.0) {
		t.Errorf("bEnd = %v, want 2.0", bEnd)
	}
	if !almostEqual(aEnd, 4.0) {
		t.Errorf("aEnd = %v, want 4.0", aEnd)
	}
}

func TestMultiResourceBottleneck(t *testing.T) {
	// A flow crossing a fast NIC (1000 B/s) and a slow disk (10 B/s) is
	// limited by the disk.
	e := NewEngine()
	nic := NewResource(e, "nic", 1000)
	disk := NewResource(e, "disk", 10)
	e.Go("f", func(p *Proc) {
		p.Transfer(100, nic, disk)
	})
	end, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(end, 10.0) {
		t.Errorf("end = %v, want 10", end)
	}
}

func TestMaxMinUnevenShares(t *testing.T) {
	// Flow X uses only resource R1 (cap 100). Flows Y and Z use R1 and R2
	// (cap 30). Max-min: Y and Z bottlenecked by R2 at 15 each; X gets the
	// R1 residual, 100-30=70.
	e := NewEngine()
	r1 := NewResource(e, "r1", 100)
	r2 := NewResource(e, "r2", 30)
	var xEnd float64
	e.Go("x", func(p *Proc) {
		p.Transfer(70, r1) // at 70 B/s -> 1s if shares hold
		xEnd = p.Now()
	})
	e.Go("y", func(p *Proc) { p.Transfer(1500, r1, r2) })
	e.Go("z", func(p *Proc) { p.Transfer(1500, r1, r2) })
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !almostEqual(xEnd, 1.0) {
		t.Errorf("xEnd = %v, want 1.0 (rate 70)", xEnd)
	}
}

func TestNFlowsScaling(t *testing.T) {
	// n identical flows on one resource all finish at n*size/cap.
	for _, n := range []int{1, 4, 16, 64} {
		e := NewEngine()
		disk := NewResource(e, "disk", 1000)
		var ends []float64
		for i := 0; i < n; i++ {
			e.Go("w", func(p *Proc) {
				p.Transfer(500, disk)
				ends = append(ends, p.Now())
			})
		}
		if _, err := e.Run(); err != nil {
			t.Fatal(err)
		}
		want := float64(n) * 500 / 1000
		for _, g := range ends {
			if !almostEqual(g, want) {
				t.Errorf("n=%d: end=%v want %v", n, g, want)
			}
		}
	}
}

func TestSignal(t *testing.T) {
	e := NewEngine()
	s := NewSignal(e)
	var woke []float64
	for i := 0; i < 3; i++ {
		e.Go("waiter", func(p *Proc) {
			s.Wait(p)
			woke = append(woke, p.Now())
		})
	}
	e.Go("firer", func(p *Proc) {
		p.Wait(5)
		s.Fire()
	})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(woke) != 3 {
		t.Fatalf("woke %d waiters, want 3", len(woke))
	}
	for _, w := range woke {
		if !almostEqual(w, 5) {
			t.Errorf("woke at %v, want 5", w)
		}
	}
	// Waiting on a fired signal returns immediately.
	e2 := NewEngine()
	s2 := NewSignal(e2)
	s2.Fire()
	e2.Go("late", func(p *Proc) {
		s2.Wait(p)
		if p.Now() != 0 {
			t.Error("late waiter blocked on fired signal")
		}
	})
	if _, err := e2.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestWaitGroup(t *testing.T) {
	e := NewEngine()
	wg := NewWaitGroup(e, 3)
	var end float64
	for i := 1; i <= 3; i++ {
		d := float64(i)
		e.Go("worker", func(p *Proc) {
			p.Wait(d)
			wg.Done()
		})
	}
	e.Go("joiner", func(p *Proc) {
		wg.Wait(p)
		end = p.Now()
	})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !almostEqual(end, 3) {
		t.Errorf("join at %v, want 3", end)
	}
}

func TestWaitGroupZero(t *testing.T) {
	e := NewEngine()
	wg := NewWaitGroup(e, 0)
	e.Go("j", func(p *Proc) { wg.Wait(p) })
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestSemaphoreLimitsConcurrency(t *testing.T) {
	// 4 jobs of 1s each through a 2-permit semaphore: finish at 1,1,2,2.
	e := NewEngine()
	sem := NewSemaphore(e, 2)
	var ends []float64
	for i := 0; i < 4; i++ {
		e.Go("job", func(p *Proc) {
			sem.Acquire(p)
			p.Wait(1)
			sem.Release()
			ends = append(ends, p.Now())
		})
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	sort.Float64s(ends)
	want := []float64{1, 1, 2, 2}
	for i := range want {
		if !almostEqual(ends[i], want[i]) {
			t.Errorf("ends = %v, want %v", ends, want)
		}
	}
}

func TestDeadlockDetection(t *testing.T) {
	e := NewEngine()
	s := NewSignal(e)
	e.Go("stuck", func(p *Proc) { s.Wait(p) })
	if _, err := e.Run(); err == nil {
		t.Error("Run returned nil error for a deadlocked simulation")
	}
}

func TestDeadline(t *testing.T) {
	e := NewEngine()
	e.SetDeadline(10)
	e.Go("slow", func(p *Proc) { p.Wait(100) })
	if _, err := e.Run(); err == nil {
		t.Error("Run did not report deadline exceeded")
	}
}

func TestZeroTransferCompletesInstantly(t *testing.T) {
	e := NewEngine()
	disk := NewResource(e, "disk", 10)
	e.Go("p", func(p *Proc) {
		p.Transfer(0, disk)
		p.Transfer(5) // no resources
	})
	end, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if end != 0 {
		t.Errorf("end = %v, want 0", end)
	}
}

func TestNestedSpawn(t *testing.T) {
	e := NewEngine()
	disk := NewResource(e, "disk", 100)
	var childEnd float64
	e.Go("parent", func(p *Proc) {
		p.Wait(1)
		wg := NewWaitGroup(e, 1)
		e.Go("child", func(c *Proc) {
			c.Transfer(100, disk)
			childEnd = c.Now()
			wg.Done()
		})
		wg.Wait(p)
	})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !almostEqual(childEnd, 2.0) {
		t.Errorf("childEnd = %v, want 2.0", childEnd)
	}
}

func TestResourceAccessors(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "d0", 55e6)
	if r.Name() != "d0" || r.Capacity() != 55e6 || r.Load() != 0 {
		t.Errorf("accessors wrong: %q %v %d", r.Name(), r.Capacity(), r.Load())
	}
}

func TestConvergenceManyPhases(t *testing.T) {
	// Staggered arrivals: flows arriving at t=0,1,2 on a cap-100 resource,
	// each 300 bytes. Verifies settlement across several reallocations:
	// total bytes = 900, so the last finish must be >= 9s; and conservation
	// holds: sum of bytes equals capacity * integral of utilization.
	e := NewEngine()
	disk := NewResource(e, "disk", 100)
	var last float64
	for i := 0; i < 3; i++ {
		d := float64(i)
		e.Go("w", func(p *Proc) {
			p.Wait(d)
			p.Transfer(300, disk)
			if p.Now() > last {
				last = p.Now()
			}
		})
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if last < 9-eps {
		t.Errorf("last finish %v < 9 violates capacity conservation", last)
	}
	if last > 9+0.001 {
		t.Errorf("last finish %v > 9: resource idled while work remained", last)
	}
}
