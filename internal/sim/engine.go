// Package sim implements a deterministic discrete-event simulator with
// flow-level bandwidth modeling.
//
// Simulated activities are written as ordinary blocking Go code: each
// simulated process runs in its own goroutine, but the engine resumes exactly
// one process at a time, so execution is sequential and deterministic.
// Virtual time advances only when every process is blocked on a timer, a
// transfer, or a signal.
//
// Bandwidth-bound work (disk and network transfers) is modeled at flow level:
// a Flow consumes capacity on one or more Resources, and the engine assigns
// rates by max-min fair sharing (progressive filling) across all resources.
// This reproduces contention effects — e.g. 120 writers sharing one parallel
// file system — without simulating individual packets.
package sim

import (
	"container/heap"
	"fmt"
	"math"
	"sort"
)

// Engine is a discrete-event simulation engine. Create one with NewEngine,
// add root processes with Go, then call Run.
type Engine struct {
	now      float64 // virtual time, seconds
	events   eventHeap
	seq      int64 // tie-breaker for deterministic event ordering
	flows    map[*Flow]struct{}
	procs    int // live (not yet finished) processes
	runnable []*Proc
	maxTime  float64
}

// NewEngine returns an empty engine at virtual time zero.
func NewEngine() *Engine {
	return &Engine{
		flows:   make(map[*Flow]struct{}),
		maxTime: math.Inf(1),
	}
}

// Now returns the current virtual time in seconds.
func (e *Engine) Now() float64 { return e.now }

// SetDeadline makes Run stop (with an error) if virtual time exceeds t.
// Useful to catch protocol livelocks in tests.
func (e *Engine) SetDeadline(t float64) { e.maxTime = t }

type event struct {
	at     float64
	seq    int64
	fire   func()
	cancel *bool // if non-nil and true, the event is skipped
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// schedule registers fire to run at virtual time at. It returns a cancel
// function that prevents the event from firing.
func (e *Engine) schedule(at float64, fire func()) (cancel func()) {
	if at < e.now {
		at = e.now
	}
	e.seq++
	flag := new(bool)
	heap.Push(&e.events, &event{at: at, seq: e.seq, fire: fire, cancel: flag})
	return func() { *flag = true }
}

// Proc is a simulated process. All blocking methods must be called from the
// goroutine that runs the process body.
type Proc struct {
	eng    *Engine
	name   string
	resume chan struct{}
	yield  chan struct{}
	done   bool
}

// Go starts a new simulated process running body. It may be called before
// Run or from inside another process.
func (e *Engine) Go(name string, body func(p *Proc)) *Proc {
	p := &Proc{
		eng:    e,
		name:   name,
		resume: make(chan struct{}),
		yield:  make(chan struct{}),
	}
	e.procs++
	go func() {
		<-p.resume
		body(p)
		p.done = true
		p.yield <- struct{}{}
	}()
	e.runnable = append(e.runnable, p)
	return p
}

// step transfers control to p and waits until it blocks or finishes.
func (e *Engine) step(p *Proc) {
	p.resume <- struct{}{}
	<-p.yield
	if p.done {
		e.procs--
	}
}

// block suspends the calling process until the engine resumes it.
func (p *Proc) block() {
	p.yield <- struct{}{}
	<-p.resume
}

// Run executes the simulation until no events remain and all processes have
// finished, and returns the final virtual time. It returns an error if
// processes remain blocked with no pending events (deadlock) or the deadline
// set by SetDeadline is exceeded.
func (e *Engine) Run() (float64, error) {
	for {
		// Drain the runnable set (processes started but not yet stepped).
		for len(e.runnable) > 0 {
			p := e.runnable[0]
			e.runnable = e.runnable[1:]
			e.step(p)
		}
		if e.events.Len() == 0 {
			if e.procs > 0 {
				return e.now, fmt.Errorf("sim: deadlock at t=%.6f: %d processes blocked with no pending events", e.now, e.procs)
			}
			return e.now, nil
		}
		ev := heap.Pop(&e.events).(*event)
		if ev.cancel != nil && *ev.cancel {
			continue
		}
		if ev.at > e.maxTime {
			return e.now, fmt.Errorf("sim: deadline %.6f exceeded at t=%.6f", e.maxTime, ev.at)
		}
		e.now = ev.at
		ev.fire()
	}
}

// Name returns the process name given to Go.
func (p *Proc) Name() string { return p.name }

// Now returns the current virtual time in seconds.
func (p *Proc) Now() float64 { return p.eng.now }

// Engine returns the engine this process runs on.
func (p *Proc) Engine() *Engine { return p.eng }

// Wait blocks the process for d seconds of virtual time. Negative d is
// treated as zero.
func (p *Proc) Wait(d float64) {
	if d < 0 {
		d = 0
	}
	p.eng.schedule(p.eng.now+d, func() {
		p.eng.step(p)
	})
	p.block()
}

// Signal is a broadcast condition in virtual time: processes block on Wait
// until another process calls Fire, which wakes all current waiters.
// After Fire, future Wait calls return immediately.
type Signal struct {
	eng     *Engine
	fired   bool
	waiters []*Proc
}

// NewSignal returns an unfired Signal bound to the engine.
func NewSignal(e *Engine) *Signal { return &Signal{eng: e} }

// Fired reports whether the signal has been fired.
func (s *Signal) Fired() bool { return s.fired }

// Wait blocks until the signal fires. Returns immediately if already fired.
func (s *Signal) Wait(p *Proc) {
	if s.fired {
		return
	}
	s.waiters = append(s.waiters, p)
	p.block()
}

// Fire wakes all waiters. Must be called from a running process or event.
func (s *Signal) Fire() {
	if s.fired {
		return
	}
	s.fired = true
	waiters := s.waiters
	s.waiters = nil
	for _, w := range waiters {
		w := w
		s.eng.schedule(s.eng.now, func() { s.eng.step(w) })
	}
}

// WaitGroup counts down to zero in virtual time.
type WaitGroup struct {
	n    int
	done *Signal
}

// NewWaitGroup returns a WaitGroup expecting n completions.
func NewWaitGroup(e *Engine, n int) *WaitGroup {
	wg := &WaitGroup{n: n, done: NewSignal(e)}
	if n <= 0 {
		wg.done.Fire()
	}
	return wg
}

// Done records one completion.
func (wg *WaitGroup) Done() {
	wg.n--
	if wg.n == 0 {
		wg.done.Fire()
	}
}

// Wait blocks until the count reaches zero.
func (wg *WaitGroup) Wait(p *Proc) { wg.done.Wait(p) }

// Semaphore limits concurrency in virtual time (FIFO hand-off).
type Semaphore struct {
	eng     *Engine
	free    int
	waiters []*Proc
}

// NewSemaphore returns a semaphore with n initial permits.
func NewSemaphore(e *Engine, n int) *Semaphore {
	return &Semaphore{eng: e, free: n}
}

// Acquire takes one permit, blocking in virtual time if none are free.
func (s *Semaphore) Acquire(p *Proc) {
	if s.free > 0 {
		s.free--
		return
	}
	s.waiters = append(s.waiters, p)
	p.block()
}

// Release returns one permit, waking the oldest waiter if any.
func (s *Semaphore) Release() {
	if len(s.waiters) > 0 {
		w := s.waiters[0]
		s.waiters = s.waiters[1:]
		s.eng.schedule(s.eng.now, func() { s.eng.step(w) })
		return
	}
	s.free++
}

// Resource models a bandwidth-limited device (a disk or a network link).
// Concurrent flows over the same resource share its capacity max-min fairly.
type Resource struct {
	name     string
	capacity float64 // bytes per second
	flows    map[*Flow]struct{}
}

// NewResource creates a resource with the given capacity in bytes/second.
func NewResource(e *Engine, name string, capacity float64) *Resource {
	if capacity <= 0 {
		panic("sim: resource capacity must be positive")
	}
	return &Resource{name: name, capacity: capacity, flows: make(map[*Flow]struct{})}
}

// Name returns the resource name.
func (r *Resource) Name() string { return r.name }

// Capacity returns the resource capacity in bytes/second.
func (r *Resource) Capacity() float64 { return r.capacity }

// Load returns the number of flows currently using the resource.
func (r *Resource) Load() int { return len(r.flows) }

// Flow is an in-progress transfer across a set of resources.
type Flow struct {
	resources []*Resource
	remaining float64
	rate      float64
	updatedAt float64
	waiter    *Proc
	cancelEv  func()
}

// Transfer moves size bytes across the given resources (its rate is the
// max-min fair share of the most contended one) and blocks until complete.
// A transfer across zero resources or of zero bytes completes immediately.
func (p *Proc) Transfer(size float64, resources ...*Resource) {
	if size <= 0 || len(resources) == 0 {
		return
	}
	e := p.eng
	f := &Flow{resources: resources, remaining: size, updatedAt: e.now, waiter: p}
	e.flows[f] = struct{}{}
	for _, r := range resources {
		r.flows[f] = struct{}{}
	}
	e.reallocate()
	p.block()
}

// finishFlow removes f from the system and wakes its waiter.
func (e *Engine) finishFlow(f *Flow) {
	delete(e.flows, f)
	for _, r := range f.resources {
		delete(r.flows, f)
	}
	waiter := f.waiter
	e.reallocate()
	e.step(waiter)
}

// reallocate recomputes max-min fair rates for every active flow and
// reschedules completion events. Called whenever the flow set changes.
func (e *Engine) reallocate() {
	if len(e.flows) == 0 {
		return
	}
	// Settle progress accrued at the old rates.
	for f := range e.flows {
		f.remaining -= f.rate * (e.now - f.updatedAt)
		if f.remaining < 0 {
			f.remaining = 0
		}
		f.updatedAt = e.now
		if f.cancelEv != nil {
			f.cancelEv()
			f.cancelEv = nil
		}
	}

	// Progressive filling: repeatedly find the bottleneck resource, fix the
	// fair share of its unfrozen flows, and remove them from consideration.
	// Residual capacity and unfrozen-flow counts are maintained
	// incrementally so each filling iteration is O(resources), not
	// O(resources x flows).
	unfrozen := make(map[*Flow]struct{}, len(e.flows))
	for f := range e.flows {
		unfrozen[f] = struct{}{}
		f.rate = 0
	}
	residual := make(map[*Resource]float64)
	unfrozenOn := make(map[*Resource]int)
	resList := make([]*Resource, 0, 64)
	for f := range e.flows {
		for _, r := range f.resources {
			if _, ok := residual[r]; !ok {
				residual[r] = r.capacity
				resList = append(resList, r)
			}
			unfrozenOn[r]++
		}
	}
	// Deterministic iteration order.
	sort.Slice(resList, func(i, j int) bool { return resList[i].name < resList[j].name })
	for len(unfrozen) > 0 {
		bottleneckShare := math.Inf(1)
		var bottleneck *Resource
		for _, r := range resList {
			n := unfrozenOn[r]
			if n == 0 {
				continue
			}
			share := residual[r] / float64(n)
			if share < bottleneckShare {
				bottleneckShare = share
				bottleneck = r
			}
		}
		if bottleneck == nil {
			break
		}
		for f := range bottleneck.flows {
			if _, ok := unfrozen[f]; !ok {
				continue
			}
			f.rate = bottleneckShare
			delete(unfrozen, f)
			for _, r := range f.resources {
				residual[r] -= bottleneckShare
				if residual[r] < 0 {
					residual[r] = 0
				}
				unfrozenOn[r]--
			}
		}
	}

	// Schedule completion events at the new rates.
	for f := range e.flows {
		f := f
		if f.rate <= 0 {
			// A flow starved by zero residual capacity would deadlock the
			// run; give it a vanishing rate so it still completes.
			f.rate = 1e-9
		}
		eta := e.now + f.remaining/f.rate
		f.cancelEv = e.schedule(eta, func() { e.finishFlow(f) })
	}
}
