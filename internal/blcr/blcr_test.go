package blcr

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"blobcr/internal/guestfs"
	"blobcr/internal/vdisk"
)

func TestCheckpointRestoreRoundTrip(t *testing.T) {
	p := NewProcess(1234)
	heap := p.Alloc("heap", 1000)
	for i := range heap {
		heap[i] = byte(i * 3)
	}
	stack := p.Alloc("stack", 100)
	stack[0] = 0xEE
	p.SetRegisters(Registers{PC: 42, SP: 0xBEEF, R: [8]uint64{1, 2, 3}})

	dump := p.Checkpoint()
	q, err := Restore(dump)
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if q.Pid() != 1234 {
		t.Errorf("pid = %d", q.Pid())
	}
	regs := q.Registers()
	if regs.PC != 42 || regs.SP != 0xBEEF || regs.R[2] != 3 {
		t.Errorf("registers = %+v", regs)
	}
	gotHeap, ok := q.Arena("heap")
	if !ok || !bytes.Equal(gotHeap, heap) {
		t.Error("heap arena lost or corrupted")
	}
	gotStack, ok := q.Arena("stack")
	if !ok || gotStack[0] != 0xEE {
		t.Error("stack arena lost")
	}
}

func TestDumpIsIndiscriminate(t *testing.T) {
	// The defining blcr property: the dump contains ALL allocated memory,
	// even if the application only uses a fraction.
	p := NewProcess(1)
	p.Alloc("mostly-unused", 1<<20) // 1 MiB allocated, all zero
	dump := p.Checkpoint()
	if len(dump) < 1<<20 {
		t.Errorf("dump is %d bytes; blcr must dump the full 1 MiB arena", len(dump))
	}
	if p.AllocatedBytes() != 1<<20 {
		t.Errorf("AllocatedBytes = %d", p.AllocatedBytes())
	}
}

func TestAllocReplacesAndFree(t *testing.T) {
	p := NewProcess(1)
	p.Alloc("a", 10)
	p.Alloc("a", 20) // realloc
	if p.AllocatedBytes() != 20 {
		t.Errorf("after realloc AllocatedBytes = %d", p.AllocatedBytes())
	}
	p.Free("a")
	if p.AllocatedBytes() != 0 {
		t.Errorf("after free AllocatedBytes = %d", p.AllocatedBytes())
	}
	if _, ok := p.Arena("a"); ok {
		t.Error("freed arena still present")
	}
}

func TestRestoreRejectsGarbage(t *testing.T) {
	if _, err := Restore([]byte("not a dump")); err == nil {
		t.Error("Restore accepted garbage")
	}
	if _, err := Restore(nil); err == nil {
		t.Error("Restore accepted empty input")
	}
	// Truncated dump.
	p := NewProcess(1)
	p.Alloc("x", 100)
	dump := p.Checkpoint()
	if _, err := Restore(dump[:len(dump)-10]); err == nil {
		t.Error("Restore accepted truncated dump")
	}
}

func TestFileRoundTripThroughGuestFS(t *testing.T) {
	fs, err := guestfs.Mkfs(vdisk.NewMem(1<<20), 512)
	if err != nil {
		t.Fatal(err)
	}
	p := NewProcess(7)
	data := p.Alloc("state", 5000)
	rand.New(rand.NewSource(2)).Read(data)
	p.SetRegisters(Registers{PC: 99})

	n, err := p.CheckpointToFile(fs, "/ckpt/blcr.img")
	if err == nil {
		t.Fatal("dump into missing directory succeeded")
	}
	fs.MkdirAll("/ckpt")
	n, err = p.CheckpointToFile(fs, "/ckpt/blcr.img")
	if err != nil {
		t.Fatal(err)
	}
	if n < 5000 {
		t.Errorf("dump size %d < arena size", n)
	}
	q, err := RestoreFromFile(fs, "/ckpt/blcr.img")
	if err != nil {
		t.Fatal(err)
	}
	got, _ := q.Arena("state")
	if !bytes.Equal(got, data) {
		t.Error("state corrupted through guestfs round trip")
	}
	if q.Registers().PC != 99 {
		t.Error("registers lost")
	}
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(pid uint16, pc, sp uint64, a, b []byte) bool {
		p := NewProcess(int(pid))
		copy(p.Alloc("a", len(a)), a)
		copy(p.Alloc("b", len(b)), b)
		p.SetRegisters(Registers{PC: pc, SP: sp})
		q, err := Restore(p.Checkpoint())
		if err != nil {
			return false
		}
		ga, _ := q.Arena("a")
		gb, _ := q.Arena("b")
		return bytes.Equal(ga, a) && bytes.Equal(gb, b) &&
			q.Registers().PC == pc && q.Registers().SP == sp && q.Pid() == int(pid)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRestoredProcessCanContinueAndRecheckpoint(t *testing.T) {
	p := NewProcess(1)
	buf := p.Alloc("counter", 8)
	buf[0] = 5
	q, err := Restore(p.Checkpoint())
	if err != nil {
		t.Fatal(err)
	}
	qbuf, _ := q.Arena("counter")
	qbuf[0]++ // continue computing
	r, err := Restore(q.Checkpoint())
	if err != nil {
		t.Fatal(err)
	}
	rbuf, _ := r.Arena("counter")
	if rbuf[0] != 6 {
		t.Errorf("counter = %d, want 6", rbuf[0])
	}
}
