// Package blcr models BLCR-style process-level checkpointing (Berkeley Lab
// Checkpoint/Restart), used by the paper's transparent MPI checkpointing
// path.
//
// A Process owns named memory arenas (its heap allocations) and a register
// file. Checkpoint serializes the process state *indiscriminately* — every
// allocated arena, in full, regardless of how much of it holds useful data.
// This is the defining property the paper measures: blcr checkpoints are
// substantially larger than application-level checkpoints, which select only
// the meaningful state (Table 1: 127 MB vs 52 MB per snapshot for CM1).
package blcr

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"blobcr/internal/guestfs"
	"blobcr/internal/wire"
)

const magic = 0x424C4352 // "BLCR"

// ErrBadDump is returned when restoring from a corrupt checkpoint file.
var ErrBadDump = errors.New("blcr: invalid checkpoint dump")

// Registers is the process's architectural state.
type Registers struct {
	PC uint64 // program counter: applications store their iteration count
	SP uint64
	R  [8]uint64 // general-purpose registers
}

// Process is a checkpointable process image.
type Process struct {
	pid int

	mu     sync.Mutex
	arenas map[string][]byte
	regs   Registers
}

// NewProcess returns an empty process image with the given pid.
func NewProcess(pid int) *Process {
	return &Process{pid: pid, arenas: make(map[string][]byte)}
}

// Pid returns the process id.
func (p *Process) Pid() int { return p.pid }

// Alloc registers a zeroed memory arena of the given size under name and
// returns it. The returned slice is the live memory: the application mutates
// it in place, and Checkpoint captures whatever it holds. Allocating an
// existing name replaces the arena (realloc).
func (p *Process) Alloc(name string, size int) []byte {
	p.mu.Lock()
	defer p.mu.Unlock()
	a := make([]byte, size)
	p.arenas[name] = a
	return a
}

// Arena returns a previously allocated arena.
func (p *Process) Arena(name string) ([]byte, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	a, ok := p.arenas[name]
	return a, ok
}

// Free releases an arena.
func (p *Process) Free(name string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	delete(p.arenas, name)
}

// AllocatedBytes returns the total size of all arenas — the size a blcr
// dump will have, regardless of content.
func (p *Process) AllocatedBytes() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	var total uint64
	for _, a := range p.arenas {
		total += uint64(len(a))
	}
	return total
}

// SetRegisters stores the architectural state.
func (p *Process) SetRegisters(r Registers) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.regs = r
}

// Registers returns the architectural state.
func (p *Process) Registers() Registers {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.regs
}

// Checkpoint serializes the whole process image: registers plus every
// arena, in full.
func (p *Process) Checkpoint() []byte {
	p.mu.Lock()
	defer p.mu.Unlock()
	w := wire.NewBuffer(int(64 + p.allocatedLocked()))
	w.PutU32(magic)
	w.PutU64(uint64(p.pid))
	w.PutU64(p.regs.PC)
	w.PutU64(p.regs.SP)
	for _, r := range p.regs.R {
		w.PutU64(r)
	}
	names := make([]string, 0, len(p.arenas))
	for name := range p.arenas {
		names = append(names, name)
	}
	sort.Strings(names)
	w.PutUvarint(uint64(len(names)))
	for _, name := range names {
		w.PutString(name)
		w.PutBytes(p.arenas[name])
	}
	return w.Bytes()
}

func (p *Process) allocatedLocked() uint64 {
	var total uint64
	for _, a := range p.arenas {
		total += uint64(len(a))
	}
	return total
}

// Restore reconstructs a process image from a checkpoint dump.
func Restore(dump []byte) (*Process, error) {
	r := wire.NewReader(dump)
	if r.U32() != magic {
		return nil, fmt.Errorf("%w: bad magic", ErrBadDump)
	}
	p := NewProcess(int(r.U64()))
	p.regs.PC = r.U64()
	p.regs.SP = r.U64()
	for i := range p.regs.R {
		p.regs.R[i] = r.U64()
	}
	n := r.Uvarint()
	if n > 1<<20 {
		return nil, fmt.Errorf("%w: implausible arena count %d", ErrBadDump, n)
	}
	for i := uint64(0); i < n; i++ {
		name := r.String()
		data := r.BytesCopy()
		if r.Err() != nil {
			break
		}
		p.arenas[name] = data
	}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadDump, err)
	}
	return p, nil
}

// CheckpointToFile dumps the process image into the guest file system —
// the step the paper's modified mpich2 performs before invoking sync and
// requesting a disk snapshot.
func (p *Process) CheckpointToFile(fs *guestfs.FS, path string) (int, error) {
	dump := p.Checkpoint()
	if err := fs.WriteFile(path, dump); err != nil {
		return 0, fmt.Errorf("blcr: dump to %s: %w", path, err)
	}
	return len(dump), nil
}

// RestoreFromFile reconstructs a process from a dump in the guest file
// system.
func RestoreFromFile(fs *guestfs.FS, path string) (*Process, error) {
	dump, err := fs.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("blcr: read dump %s: %w", path, err)
	}
	return Restore(dump)
}
