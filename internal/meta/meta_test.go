package meta

import (
	"fmt"
	"math/rand"
	"testing"

	"blobcr/internal/chunkstore"
)

func leaf(id uint64, size uint32) Leaf {
	return Leaf{
		Providers: []string{fmt.Sprintf("provider-%d", id%3)},
		Key:       chunkstore.Key{Blob: 1, ID: id},
		Size:      size,
	}
}

func newTree() (*Tree, *MemNodeStore) {
	s := NewMemNodeStore()
	return &Tree{Store: s}, s
}

// publishAll publishes a full initial version with count chunks.
func publishAll(t *testing.T, tr *Tree, blob, version, count uint64) (NodeRef, uint64) {
	t.Helper()
	writes := make(map[uint64]Leaf, count)
	for i := uint64(0); i < count; i++ {
		writes[i] = leaf(i, 256)
	}
	span := NextPow2(count)
	root, err := tr.Publish(blob, version, NodeRef{}, 0, span, writes)
	if err != nil {
		t.Fatalf("Publish: %v", err)
	}
	return root, span
}

func TestNextPow2(t *testing.T) {
	cases := map[uint64]uint64{0: 1, 1: 1, 2: 2, 3: 4, 4: 4, 5: 8, 8: 8, 9: 16, 1000: 1024}
	for in, want := range cases {
		if got := NextPow2(in); got != want {
			t.Errorf("NextPow2(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestPublishAndLookup(t *testing.T) {
	tr, _ := newTree()
	root, span := publishAll(t, tr, 1, 0, 8)
	slots, err := tr.Lookup(root, span, 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(slots) != 8 {
		t.Fatalf("got %d slots, want 8", len(slots))
	}
	for i, s := range slots {
		if !s.Present {
			t.Errorf("slot %d is a hole", i)
			continue
		}
		if s.Leaf.Key.ID != uint64(i) {
			t.Errorf("slot %d -> chunk %d", i, s.Leaf.Key.ID)
		}
		if s.Index != uint64(i) {
			t.Errorf("slot %d has index %d", i, s.Index)
		}
	}
}

func TestSparseInitialVersion(t *testing.T) {
	tr, _ := newTree()
	writes := map[uint64]Leaf{2: leaf(2, 100), 5: leaf(5, 100)}
	root, err := tr.Publish(1, 0, NodeRef{}, 0, 8, writes)
	if err != nil {
		t.Fatal(err)
	}
	slots, err := tr.Lookup(root, 8, 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range slots {
		wantPresent := s.Index == 2 || s.Index == 5
		if s.Present != wantPresent {
			t.Errorf("index %d present=%v, want %v", s.Index, s.Present, wantPresent)
		}
	}
}

func TestIncrementalVersionShadowing(t *testing.T) {
	tr, store := newTree()
	root0, span := publishAll(t, tr, 1, 0, 8)
	nodesAfterV0 := store.Len()

	// Version 1 rewrites only chunk 3.
	writes := map[uint64]Leaf{3: leaf(100, 256)}
	root1, err := tr.Publish(1, 1, root0, span, span, writes)
	if err != nil {
		t.Fatal(err)
	}
	// Only the path to chunk 3 is new: 1 leaf + 3 inner nodes (span 8).
	newNodes := store.Len() - nodesAfterV0
	if newNodes != 4 {
		t.Errorf("incremental publish created %d nodes, want 4", newNodes)
	}
	// New version sees the new chunk, old version still sees the old one.
	s1, err := tr.Lookup(root1, span, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if s1[0].Leaf.Key.ID != 100 {
		t.Errorf("v1 chunk 3 = %d, want 100", s1[0].Leaf.Key.ID)
	}
	s0, err := tr.Lookup(root0, span, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if s0[0].Leaf.Key.ID != 3 {
		t.Errorf("v0 chunk 3 = %d, want 3 (shadowing broken)", s0[0].Leaf.Key.ID)
	}
	// Untouched chunks of v1 are shared with v0.
	for _, idx := range []uint64{0, 1, 7} {
		a, _ := tr.Lookup(root0, span, idx, 1)
		b, _ := tr.Lookup(root1, span, idx, 1)
		if a[0].Leaf.Key != b[0].Leaf.Key {
			t.Errorf("chunk %d differs between versions: %v vs %v", idx, a[0].Leaf.Key, b[0].Leaf.Key)
		}
	}
}

func TestEmptyCommitSharesRoot(t *testing.T) {
	tr, _ := newTree()
	root0, span := publishAll(t, tr, 1, 0, 4)
	root1, err := tr.Publish(1, 1, root0, span, span, nil)
	if err != nil {
		t.Fatal(err)
	}
	if root1 != root0 {
		t.Errorf("empty commit produced new root %+v", root1)
	}
}

func TestTreeGrowth(t *testing.T) {
	tr, _ := newTree()
	root0, span0 := publishAll(t, tr, 1, 0, 4) // span 4
	// Version 1 writes chunk 9, forcing span 16.
	writes := map[uint64]Leaf{9: leaf(9, 256)}
	span1 := NextPow2(10)
	root1, err := tr.Publish(1, 1, root0, span0, span1, writes)
	if err != nil {
		t.Fatal(err)
	}
	// Old chunks still reachable through the grown tree.
	slots, err := tr.Lookup(root1, span1, 0, 16)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range slots {
		switch {
		case s.Index < 4:
			if !s.Present || s.Leaf.Key.ID != s.Index {
				t.Errorf("grown tree lost old chunk %d", s.Index)
			}
		case s.Index == 9:
			if !s.Present {
				t.Error("grown tree missing new chunk 9")
			}
		default:
			if s.Present {
				t.Errorf("index %d unexpectedly present", s.Index)
			}
		}
	}
}

func TestGrowthWithoutWrites(t *testing.T) {
	tr, _ := newTree()
	root0, span0 := publishAll(t, tr, 1, 0, 4)
	root1, err := tr.Publish(1, 1, root0, span0, 16, nil)
	if err != nil {
		t.Fatal(err)
	}
	slots, err := tr.Lookup(root1, 16, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range slots {
		if !s.Present {
			t.Errorf("chunk %d lost when growing without writes", s.Index)
		}
	}
}

func TestCloneSharesContent(t *testing.T) {
	tr, store := newTree()
	root0, span := publishAll(t, tr, 1, 0, 8)
	nodesBefore := store.Len()

	// Clone: blob 2's first version root is simply blob 1's root.
	cloneRoot := root0

	// Writes to the clone create nodes under blob 2 only.
	writes := map[uint64]Leaf{0: {Providers: []string{"p"}, Key: chunkstore.Key{Blob: 2, ID: 500}, Size: 256}}
	root2, err := tr.Publish(2, 1, cloneRoot, span, span, writes)
	if err != nil {
		t.Fatal(err)
	}
	if store.Len()-nodesBefore != 4 {
		t.Errorf("clone write created %d nodes, want 4", store.Len()-nodesBefore)
	}
	// Clone sees its own write plus the origin's data.
	s, err := tr.Lookup(root2, span, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if s[0].Leaf.Key.ID != 500 {
		t.Errorf("clone chunk 0 = %d, want 500", s[0].Leaf.Key.ID)
	}
	if s[1].Leaf.Key.ID != 1 {
		t.Errorf("clone chunk 1 = %d, want 1 (sharing broken)", s[1].Leaf.Key.ID)
	}
	// Origin unaffected.
	s0, err := tr.Lookup(root0, span, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if s0[0].Leaf.Key.ID != 0 {
		t.Errorf("origin chunk 0 = %d, want 0", s0[0].Leaf.Key.ID)
	}
}

func TestLookupBeyondSpanReturnsHoles(t *testing.T) {
	tr, _ := newTree()
	root, span := publishAll(t, tr, 1, 0, 4)
	slots, err := tr.Lookup(root, span, 2, 6) // indices 2..7, span is 4
	if err != nil {
		t.Fatal(err)
	}
	if len(slots) != 6 {
		t.Fatalf("got %d slots, want 6", len(slots))
	}
	for _, s := range slots {
		if s.Index >= 4 && s.Present {
			t.Errorf("index %d beyond span reported present", s.Index)
		}
	}
}

func TestPublishValidation(t *testing.T) {
	tr, _ := newTree()
	if _, err := tr.Publish(1, 0, NodeRef{}, 8, 4, nil); err == nil {
		t.Error("shrinking span accepted")
	}
	if _, err := tr.Publish(1, 0, NodeRef{}, 0, 3, nil); err == nil {
		t.Error("non-power-of-two span accepted")
	}
	if _, err := tr.Publish(1, 0, NodeRef{}, 0, 4, map[uint64]Leaf{7: leaf(7, 1)}); err == nil {
		t.Error("out-of-span write accepted")
	}
}

func TestWalkVisitsAllReachable(t *testing.T) {
	tr, _ := newTree()
	root, span := publishAll(t, tr, 1, 0, 8)
	var leaves, inner int
	err := tr.Walk(root, span, func(k NodeKey, isLeaf bool, l Leaf) error {
		if isLeaf {
			leaves++
		} else {
			inner++
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if leaves != 8 {
		t.Errorf("walk saw %d leaves, want 8", leaves)
	}
	if inner != 7 { // full binary tree over 8 leaves
		t.Errorf("walk saw %d inner nodes, want 7", inner)
	}
}

func TestWalkDeduplicatesSharedSubtrees(t *testing.T) {
	tr, _ := newTree()
	root0, span := publishAll(t, tr, 1, 0, 8)
	root1, err := tr.Publish(1, 1, root0, span, span, map[uint64]Leaf{0: leaf(99, 1)})
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	if err := tr.Walk(root1, span, func(NodeKey, bool, Leaf) error {
		count++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	// v1 tree: 15 nodes total reachable (8 leaves + 7 inner), all distinct.
	if count != 15 {
		t.Errorf("walk visited %d nodes, want 15", count)
	}
}

func TestManyVersionsRandomized(t *testing.T) {
	// Property: after a random sequence of versions, each version observes
	// exactly the chunks most recently written at or before it.
	tr, _ := newTree()
	rng := rand.New(rand.NewSource(42))
	const span = 32
	type versionState struct {
		root NodeRef
		view map[uint64]uint64 // chunk index -> chunk ID
	}
	var history []versionState
	cur := make(map[uint64]uint64)
	root := NodeRef{}
	var nextID uint64 = 1000

	for v := uint64(0); v < 20; v++ {
		writes := make(map[uint64]Leaf)
		for n := rng.Intn(6) + 1; n > 0; n-- {
			idx := uint64(rng.Intn(span))
			nextID++
			writes[idx] = leaf(nextID, 256)
			cur[idx] = nextID
		}
		var err error
		root, err = tr.Publish(1, v, root, span, span, writes)
		if err != nil {
			t.Fatal(err)
		}
		view := make(map[uint64]uint64, len(cur))
		for k, val := range cur {
			view[k] = val
		}
		history = append(history, versionState{root: root, view: view})
	}
	for v, st := range history {
		slots, err := tr.Lookup(st.root, span, 0, span)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range slots {
			wantID, wantPresent := st.view[s.Index]
			if s.Present != wantPresent {
				t.Errorf("v%d idx %d present=%v want %v", v, s.Index, s.Present, wantPresent)
				continue
			}
			if s.Present && s.Leaf.Key.ID != wantID {
				t.Errorf("v%d idx %d = chunk %d, want %d", v, s.Index, s.Leaf.Key.ID, wantID)
			}
		}
	}
}

func TestNodeEncodingRoundTrip(t *testing.T) {
	l := Leaf{Providers: []string{"a", "b", "c"}, Key: chunkstore.Key{Blob: 9, ID: 77}, Size: 12345}
	n1 := &node{isLeaf: true, leaf: l}
	got, err := decodeNode(encodeNode(n1))
	if err != nil {
		t.Fatal(err)
	}
	if !got.isLeaf || got.leaf.Size != 12345 || len(got.leaf.Providers) != 3 || got.leaf.Key.ID != 77 {
		t.Errorf("leaf round-trip = %+v", got)
	}
	n2 := &node{left: NodeRef{Blob: 1, Version: 2, Valid: true}, right: NodeRef{}}
	got2, err := decodeNode(encodeNode(n2))
	if err != nil {
		t.Fatal(err)
	}
	if got2.isLeaf || got2.left != n2.left || got2.right != n2.right {
		t.Errorf("inner round-trip = %+v", got2)
	}
	if _, err := decodeNode([]byte{99}); err == nil {
		t.Error("decoding garbage succeeded")
	}
}
