// Package meta implements BlobSeer's versioned metadata: a distributed
// segment tree that maps each BLOB version to the chunks composing it.
//
// Every version of a BLOB is described by a binary tree over the chunk index
// space. Leaves are chunk descriptors (which providers hold the chunk);
// inner nodes cover power-of-two ranges. Nodes are immutable and keyed by
// (blob, version, offset, span), so publishing a new version writes only the
// nodes on the paths to modified chunks — unmodified subtrees are shared
// with earlier versions by reference. This is the "shadowing" the paper
// relies on: each snapshot looks like a standalone image while physically
// storing only deltas.
//
// Cloning falls out of the same representation: a clone's root simply
// references the origin blob's tree; the clone's subsequent writes create
// nodes under its own blob id whose unmodified children still point into the
// origin's nodes.
package meta

import (
	"errors"
	"fmt"

	"blobcr/internal/chunkstore"
	"blobcr/internal/wire"
)

// NodeKey identifies an immutable tree node. Offset and Span are measured in
// chunks; Span is a power of two.
type NodeKey struct {
	Blob    uint64
	Version uint64
	Offset  uint64
	Span    uint64
}

// NodeRef points to a node created by some blob at some version; the node's
// offset and span are implied by the position in the tree being descended.
type NodeRef struct {
	Blob    uint64
	Version uint64
	Valid   bool
}

// Leaf describes one stored chunk: the data providers holding its replicas,
// its storage key, and its payload size.
type Leaf struct {
	Providers []string
	Key       chunkstore.Key
	Size      uint32
}

// LeafSlot is a Lookup result: the chunk index and its descriptor, or
// Present=false for a hole (never-written range, reads as zeros).
type LeafSlot struct {
	Index   uint64
	Leaf    Leaf
	Present bool
}

// NodeStore is the storage backend for tree nodes. Implementations shard
// keys across metadata providers.
type NodeStore interface {
	PutNode(k NodeKey, encoded []byte) error
	GetNode(k NodeKey) ([]byte, error)
}

// ErrNodeNotFound is returned by NodeStore implementations for missing nodes.
var ErrNodeNotFound = errors.New("meta: node not found")

// Tree provides segment-tree operations over a NodeStore.
type Tree struct {
	Store NodeStore
}

// node is the decoded form of a stored tree node.
type node struct {
	isLeaf      bool
	left, right NodeRef // inner
	leaf        Leaf    // leaf
}

func encodeNode(n *node) []byte {
	w := wire.NewBuffer(64)
	if n.isLeaf {
		w.PutU8(2)
		w.PutUvarint(uint64(len(n.leaf.Providers)))
		for _, p := range n.leaf.Providers {
			w.PutString(p)
		}
		w.PutU64(n.leaf.Key.Blob)
		w.PutU64(n.leaf.Key.ID)
		w.PutU32(n.leaf.Size)
	} else {
		w.PutU8(1)
		putRef := func(r NodeRef) {
			w.PutBool(r.Valid)
			w.PutU64(r.Blob)
			w.PutU64(r.Version)
		}
		putRef(n.left)
		putRef(n.right)
	}
	return w.Bytes()
}

func decodeNode(p []byte) (*node, error) {
	r := wire.NewReader(p)
	kind := r.U8()
	n := &node{}
	switch kind {
	case 2:
		n.isLeaf = true
		np := r.Uvarint()
		if np > 1024 {
			return nil, fmt.Errorf("meta: implausible provider count %d", np)
		}
		n.leaf.Providers = make([]string, np)
		for i := range n.leaf.Providers {
			n.leaf.Providers[i] = r.String()
		}
		n.leaf.Key.Blob = r.U64()
		n.leaf.Key.ID = r.U64()
		n.leaf.Size = r.U32()
	case 1:
		getRef := func() NodeRef {
			var ref NodeRef
			ref.Valid = r.Bool()
			ref.Blob = r.U64()
			ref.Version = r.U64()
			return ref
		}
		n.left = getRef()
		n.right = getRef()
	default:
		return nil, fmt.Errorf("meta: unknown node kind %d", kind)
	}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("meta: decode node: %w", err)
	}
	return n, nil
}

func (t *Tree) getNode(ref NodeRef, offset, span uint64) (*node, error) {
	raw, err := t.Store.GetNode(NodeKey{Blob: ref.Blob, Version: ref.Version, Offset: offset, Span: span})
	if err != nil {
		return nil, err
	}
	return decodeNode(raw)
}

// NextPow2 returns the smallest power of two >= n (and >= 1).
func NextPow2(n uint64) uint64 {
	s := uint64(1)
	for s < n {
		s <<= 1
	}
	return s
}

// Publish creates the tree for a new version. blob/version name the new
// nodes; prev is the root of the version being extended (invalid for the
// first version); prevSpan and newSpan are the tree spans in chunks
// (newSpan >= prevSpan, both powers of two); writes maps chunk index ->
// descriptor for every chunk modified in this version.
//
// It returns the new root reference. If writes is empty and the span does
// not grow, the previous root is returned unchanged (an empty commit shares
// everything).
func (t *Tree) Publish(blob, version uint64, prev NodeRef, prevSpan, newSpan uint64, writes map[uint64]Leaf) (NodeRef, error) {
	if newSpan < prevSpan {
		return NodeRef{}, fmt.Errorf("meta: tree span cannot shrink (%d < %d)", newSpan, prevSpan)
	}
	if newSpan == 0 || newSpan&(newSpan-1) != 0 {
		return NodeRef{}, fmt.Errorf("meta: span %d is not a power of two", newSpan)
	}
	if len(writes) == 0 && newSpan == prevSpan {
		return prev, nil
	}
	for idx := range writes {
		if idx >= newSpan {
			return NodeRef{}, fmt.Errorf("meta: write index %d outside span %d", idx, newSpan)
		}
	}
	b := &builder{tree: t, blob: blob, version: version, prevRoot: prev, prevSpan: prevSpan, writes: writes}
	var prevHere NodeRef
	if prev.Valid && newSpan == prevSpan {
		prevHere = prev
	}
	ref, err := b.build(prevHere, 0, newSpan)
	if err != nil {
		return NodeRef{}, err
	}
	return ref, nil
}

// builder carries the context of one Publish call.
type builder struct {
	tree     *Tree
	blob     uint64
	version  uint64
	prevRoot NodeRef
	prevSpan uint64
	writes   map[uint64]Leaf
}

// build constructs the node covering [offset, offset+span). prevHere is the
// previous version's node for this exact range (invalid if the range did not
// exist or was a hole). It returns the previous node's reference when the
// range is untouched, achieving structural sharing.
func (b *builder) build(prevHere NodeRef, offset, span uint64) (NodeRef, error) {
	touched := false
	for idx := range b.writes {
		if idx >= offset && idx < offset+span {
			touched = true
			break
		}
	}
	// When the tree grows, the old root sits at (0, prevSpan) inside the new
	// tree; the subtrees above it must be materialized even if untouched so
	// the new root reaches the old data.
	wrapsOldRoot := b.prevRoot.Valid && span > b.prevSpan && offset == 0
	if !touched && !wrapsOldRoot {
		return prevHere, nil // share previous subtree, or keep a hole
	}
	if span == 1 {
		leaf := b.writes[offset] // touched guarantees presence
		return b.put(offset, span, &node{isLeaf: true, leaf: leaf})
	}
	half := span / 2
	var prevLeft, prevRight NodeRef
	switch {
	case prevHere.Valid:
		pn, err := b.tree.getNode(prevHere, offset, span)
		if err != nil {
			return NodeRef{}, fmt.Errorf("meta: fetch previous node (off=%d span=%d): %w", offset, span, err)
		}
		if pn.isLeaf {
			return NodeRef{}, fmt.Errorf("meta: unexpected leaf at span %d", span)
		}
		prevLeft, prevRight = pn.left, pn.right
	case wrapsOldRoot && half == b.prevSpan:
		// Left child is exactly the old root.
		prevLeft = b.prevRoot
	}
	left, err := b.build(prevLeft, offset, half)
	if err != nil {
		return NodeRef{}, err
	}
	right, err := b.build(prevRight, offset+half, half)
	if err != nil {
		return NodeRef{}, err
	}
	return b.put(offset, span, &node{left: left, right: right})
}

func (b *builder) put(offset, span uint64, n *node) (NodeRef, error) {
	key := NodeKey{Blob: b.blob, Version: b.version, Offset: offset, Span: span}
	if err := b.tree.Store.PutNode(key, encodeNode(n)); err != nil {
		return NodeRef{}, err
	}
	return NodeRef{Blob: b.blob, Version: b.version, Valid: true}, nil
}

// Lookup returns the leaf slots for chunk indices [first, first+count) in
// the tree rooted at root with the given span. Indices beyond the span are
// reported as holes.
func (t *Tree) Lookup(root NodeRef, span uint64, first, count uint64) ([]LeafSlot, error) {
	out := make([]LeafSlot, 0, count)
	err := t.lookupRange(root, 0, span, first, first+count, &out)
	if err != nil {
		return nil, err
	}
	// Fill any indices beyond the tree span as holes.
	for idx := first; idx < first+count; idx++ {
		if idx >= span {
			out = append(out, LeafSlot{Index: idx})
		}
	}
	return out, nil
}

func (t *Tree) lookupRange(ref NodeRef, offset, span, lo, hi uint64, out *[]LeafSlot) error {
	if offset >= hi || offset+span <= lo {
		return nil // disjoint
	}
	if !ref.Valid {
		// Hole subtree: report holes for the overlap.
		start, end := max(offset, lo), min(offset+span, hi)
		for idx := start; idx < end; idx++ {
			*out = append(*out, LeafSlot{Index: idx})
		}
		return nil
	}
	n, err := t.getNode(ref, offset, span)
	if err != nil {
		return fmt.Errorf("meta: lookup node (off=%d span=%d): %w", offset, span, err)
	}
	if span == 1 {
		if !n.isLeaf {
			return fmt.Errorf("meta: inner node at span 1")
		}
		*out = append(*out, LeafSlot{Index: offset, Leaf: n.leaf, Present: true})
		return nil
	}
	if n.isLeaf {
		return fmt.Errorf("meta: leaf node at span %d", span)
	}
	half := span / 2
	if err := t.lookupRange(n.left, offset, half, lo, hi, out); err != nil {
		return err
	}
	return t.lookupRange(n.right, offset+half, half, lo, hi, out)
}

// Walk visits every node reachable from root (covering [0, span)), calling
// fn with each node's key and, for leaves, the decoded descriptor. Used by
// mark-and-sweep garbage collection. Shared subtrees reachable from multiple
// roots are visited once per Walk call; the visited map deduplicates within
// a call.
func (t *Tree) Walk(root NodeRef, span uint64, fn func(k NodeKey, isLeaf bool, leaf Leaf) error) error {
	visited := make(map[NodeKey]struct{})
	return t.walk(root, 0, span, fn, visited)
}

func (t *Tree) walk(ref NodeRef, offset, span uint64, fn func(NodeKey, bool, Leaf) error, visited map[NodeKey]struct{}) error {
	if !ref.Valid {
		return nil
	}
	key := NodeKey{Blob: ref.Blob, Version: ref.Version, Offset: offset, Span: span}
	if _, seen := visited[key]; seen {
		return nil
	}
	visited[key] = struct{}{}
	n, err := t.getNode(ref, offset, span)
	if err != nil {
		return err
	}
	if err := fn(key, n.isLeaf, n.leaf); err != nil {
		return err
	}
	if n.isLeaf {
		return nil
	}
	half := span / 2
	if err := t.walk(n.left, offset, half, fn, visited); err != nil {
		return err
	}
	return t.walk(n.right, offset+half, half, fn, visited)
}

// MemNodeStore is an in-memory NodeStore for tests and single-process use.
type MemNodeStore struct {
	m map[NodeKey][]byte
}

// NewMemNodeStore returns an empty in-memory node store.
func NewMemNodeStore() *MemNodeStore {
	return &MemNodeStore{m: make(map[NodeKey][]byte)}
}

// PutNode implements NodeStore.
func (s *MemNodeStore) PutNode(k NodeKey, encoded []byte) error {
	if _, exists := s.m[k]; exists {
		return nil // nodes are immutable; re-put is idempotent
	}
	cp := make([]byte, len(encoded))
	copy(cp, encoded)
	s.m[k] = cp
	return nil
}

// GetNode implements NodeStore.
func (s *MemNodeStore) GetNode(k NodeKey) ([]byte, error) {
	v, ok := s.m[k]
	if !ok {
		return nil, fmt.Errorf("%w: %+v", ErrNodeNotFound, k)
	}
	return v, nil
}

// Len returns the number of stored nodes (for space-accounting tests).
func (s *MemNodeStore) Len() int { return len(s.m) }

// Delete removes a node (garbage collection sweep).
func (s *MemNodeStore) Delete(k NodeKey) { delete(s.m, k) }

// Keys returns all stored node keys (sweep enumeration).
func (s *MemNodeStore) Keys() []NodeKey {
	out := make([]NodeKey, 0, len(s.m))
	for k := range s.m {
		out = append(out, k)
	}
	return out
}
