// Package meta implements BlobSeer's versioned metadata: a distributed
// segment tree that maps each BLOB version to the chunks composing it.
//
// Every version of a BLOB is described by a binary tree over the chunk index
// space. Leaves are chunk descriptors (which providers hold the chunk);
// inner nodes cover power-of-two ranges. Nodes are immutable and keyed by
// (blob, version, offset, span), so publishing a new version writes only the
// nodes on the paths to modified chunks — unmodified subtrees are shared
// with earlier versions by reference. This is the "shadowing" the paper
// relies on: each snapshot looks like a standalone image while physically
// storing only deltas.
//
// Cloning falls out of the same representation: a clone's root simply
// references the origin blob's tree; the clone's subsequent writes create
// nodes under its own blob id whose unmodified children still point into the
// origin's nodes.
//
// Node I/O is batched: the NodeStore interface moves whole node sets per
// call. Publish stages every node it creates and flushes them in a single
// PutNodes call, and Publish's reads of the previous version's paths as well
// as Lookup's descent proceed level by level, fetching each level's node set
// in one GetNodes call — so a tree operation costs O(tree depth) round trips
// per metadata provider instead of O(nodes touched).
package meta

import (
	"errors"
	"fmt"
	"slices"
	"sort"

	"blobcr/internal/chunkstore"
	"blobcr/internal/wire"
)

// NodeKey identifies an immutable tree node. Offset and Span are measured in
// chunks; Span is a power of two.
type NodeKey struct {
	Blob    uint64
	Version uint64
	Offset  uint64
	Span    uint64
}

// NodeRef points to a node created by some blob at some version; the node's
// offset and span are implied by the position in the tree being descended.
type NodeRef struct {
	Blob    uint64
	Version uint64
	Valid   bool
}

// Leaf describes one stored chunk: the data providers holding its replicas,
// its storage key, and its payload size.
type Leaf struct {
	Providers []string
	Key       chunkstore.Key
	Size      uint32
}

// LeafSlot is a Lookup result: the chunk index and its descriptor, or
// Present=false for a hole (never-written range, reads as zeros).
type LeafSlot struct {
	Index   uint64
	Leaf    Leaf
	Present bool
}

// NodePut is one staged node write.
type NodePut struct {
	Key     NodeKey
	Encoded []byte
}

// NodeStore is the storage backend for tree nodes. Implementations shard
// keys across metadata providers; both methods move whole node sets so a
// remote implementation can group by shard and issue one round trip per
// metadata provider.
type NodeStore interface {
	// PutNodes stores the staged nodes. Nodes are immutable: re-putting an
	// existing key is an idempotent no-op.
	PutNodes(puts []NodePut) error
	// GetNodes fetches the encoded nodes for keys, aligned by index. A
	// missing node yields a nil entry, not an error: callers decide whether
	// absence is a hole or corruption.
	GetNodes(keys []NodeKey) ([][]byte, error)
}

// ErrNodeNotFound is returned for tree descents that hit a missing node.
var ErrNodeNotFound = errors.New("meta: node not found")

// Tree provides segment-tree operations over a NodeStore.
type Tree struct {
	Store NodeStore
}

// node is the decoded form of a stored tree node.
type node struct {
	isLeaf      bool
	left, right NodeRef // inner
	leaf        Leaf    // leaf
}

func encodeNode(n *node) []byte {
	w := wire.NewBuffer(64)
	if n.isLeaf {
		w.PutU8(2)
		w.PutUvarint(uint64(len(n.leaf.Providers)))
		for _, p := range n.leaf.Providers {
			w.PutString(p)
		}
		w.PutU64(n.leaf.Key.Blob)
		w.PutU64(n.leaf.Key.ID)
		w.PutU32(n.leaf.Size)
	} else {
		w.PutU8(1)
		putRef := func(r NodeRef) {
			w.PutBool(r.Valid)
			w.PutU64(r.Blob)
			w.PutU64(r.Version)
		}
		putRef(n.left)
		putRef(n.right)
	}
	return w.Bytes()
}

func decodeNode(p []byte) (*node, error) {
	r := wire.NewReader(p)
	kind := r.U8()
	n := &node{}
	switch kind {
	case 2:
		n.isLeaf = true
		np := r.Uvarint()
		if np > 1024 {
			return nil, fmt.Errorf("meta: implausible provider count %d", np)
		}
		n.leaf.Providers = make([]string, np)
		for i := range n.leaf.Providers {
			n.leaf.Providers[i] = r.String()
		}
		n.leaf.Key.Blob = r.U64()
		n.leaf.Key.ID = r.U64()
		n.leaf.Size = r.U32()
	case 1:
		getRef := func() NodeRef {
			var ref NodeRef
			ref.Valid = r.Bool()
			ref.Blob = r.U64()
			ref.Version = r.U64()
			return ref
		}
		n.left = getRef()
		n.right = getRef()
	default:
		return nil, fmt.Errorf("meta: unknown node kind %d", kind)
	}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("meta: decode node: %w", err)
	}
	return n, nil
}

// treePos names one node position being fetched during a level-order
// descent: the reference to follow and the range it covers.
type treePos struct {
	ref          NodeRef
	offset, span uint64
}

// getLevel fetches and decodes one descent level's nodes in a single
// GetNodes call, aligned with items. A missing node is wrapped in
// ErrNodeNotFound and a decode failure in the given verb's context, so both
// level-order traversals (Publish's prefetch and Lookup) report errors the
// same way.
func (t *Tree) getLevel(verb string, items []treePos) ([]*node, error) {
	keys := make([]NodeKey, len(items))
	for i, it := range items {
		keys[i] = NodeKey{Blob: it.ref.Blob, Version: it.ref.Version, Offset: it.offset, Span: it.span}
	}
	raws, err := t.Store.GetNodes(keys)
	if err != nil {
		return nil, err
	}
	out := make([]*node, len(items))
	for i, it := range items {
		if raws[i] == nil {
			return nil, fmt.Errorf("meta: %s (off=%d span=%d): %w: %+v", verb, it.offset, it.span, ErrNodeNotFound, keys[i])
		}
		n, err := decodeNode(raws[i])
		if err != nil {
			return nil, fmt.Errorf("meta: %s (off=%d span=%d): %w", verb, it.offset, it.span, err)
		}
		out[i] = n
	}
	return out, nil
}

// getNode fetches and decodes one node (single-node convenience over
// GetNodes, used where batching has nothing to gain).
func (t *Tree) getNode(ref NodeRef, offset, span uint64) (*node, error) {
	key := NodeKey{Blob: ref.Blob, Version: ref.Version, Offset: offset, Span: span}
	raws, err := t.Store.GetNodes([]NodeKey{key})
	if err != nil {
		return nil, err
	}
	if len(raws) != 1 || raws[0] == nil {
		return nil, fmt.Errorf("%w: %+v", ErrNodeNotFound, key)
	}
	return decodeNode(raws[0])
}

// NextPow2 returns the smallest power of two >= n (and >= 1).
func NextPow2(n uint64) uint64 {
	s := uint64(1)
	for s < n {
		s <<= 1
	}
	return s
}

// Publish creates the tree for a new version. blob/version name the new
// nodes; prev is the root of the version being extended (invalid for the
// first version); prevSpan and newSpan are the tree spans in chunks
// (newSpan >= prevSpan, both powers of two); writes maps chunk index ->
// descriptor for every chunk modified in this version.
//
// It returns the new root reference. If writes is empty and the span does
// not grow, the previous root is returned unchanged (an empty commit shares
// everything).
//
// I/O is batched: the previous version's nodes along the modified paths are
// prefetched level by level (one GetNodes per level) and every node created
// is staged and flushed in one PutNodes call, so the store sees O(depth)
// reads and exactly one write per Publish.
func (t *Tree) Publish(blob, version uint64, prev NodeRef, prevSpan, newSpan uint64, writes map[uint64]Leaf) (NodeRef, error) {
	if newSpan < prevSpan {
		return NodeRef{}, fmt.Errorf("meta: tree span cannot shrink (%d < %d)", newSpan, prevSpan)
	}
	if newSpan == 0 || newSpan&(newSpan-1) != 0 {
		return NodeRef{}, fmt.Errorf("meta: span %d is not a power of two", newSpan)
	}
	if len(writes) == 0 && newSpan == prevSpan {
		return prev, nil
	}
	for idx := range writes {
		if idx >= newSpan {
			return NodeRef{}, fmt.Errorf("meta: write index %d outside span %d", idx, newSpan)
		}
	}
	indices := make([]uint64, 0, len(writes))
	for idx := range writes {
		indices = append(indices, idx)
	}
	slices.Sort(indices)
	b := &builder{
		tree:     t,
		blob:     blob,
		version:  version,
		prevRoot: prev,
		prevSpan: prevSpan,
		writes:   writes,
		indices:  indices,
		cache:    make(map[NodeKey]*node),
	}
	var prevHere NodeRef
	if prev.Valid && newSpan == prevSpan {
		prevHere = prev
	}
	if err := b.prefetch(prevHere, newSpan); err != nil {
		return NodeRef{}, err
	}
	ref, err := b.build(prevHere, 0, newSpan)
	if err != nil {
		return NodeRef{}, err
	}
	if err := t.Store.PutNodes(b.pending); err != nil {
		return NodeRef{}, err
	}
	return ref, nil
}

// builder carries the context of one Publish call.
type builder struct {
	tree     *Tree
	blob     uint64
	version  uint64
	prevRoot NodeRef
	prevSpan uint64
	writes   map[uint64]Leaf
	indices  []uint64 // sorted write indices

	cache   map[NodeKey]*node // prefetched previous-version nodes
	pending []NodePut         // staged writes, flushed once
}

// touched reports whether any write index falls in [offset, offset+span).
func (b *builder) touched(offset, span uint64) bool {
	i := sort.Search(len(b.indices), func(i int) bool { return b.indices[i] >= offset })
	return i < len(b.indices) && b.indices[i] < offset+span
}

// wrapsOldRoot reports whether the range must be materialized solely to keep
// the grown tree connected to the old root at (0, prevSpan).
func (b *builder) wrapsOldRoot(offset, span uint64) bool {
	return b.prevRoot.Valid && span > b.prevSpan && offset == 0
}

// prefetch walks the previous version's nodes that build is about to read —
// the inner nodes covering touched ranges, plus the leftmost spine of a
// grown tree — level by level, fetching each level's set in one GetNodes
// call and priming the cache.
func (b *builder) prefetch(root NodeRef, span uint64) error {
	frontier := []treePos{{ref: root, offset: 0, span: span}}
	for len(frontier) > 0 {
		var next []treePos
		var fetch []treePos
		for _, it := range frontier {
			touched := b.touched(it.offset, it.span)
			wraps := b.wrapsOldRoot(it.offset, it.span)
			if (!touched && !wraps) || it.span == 1 {
				continue
			}
			half := it.span / 2
			switch {
			case it.ref.Valid:
				fetch = append(fetch, it)
			case wraps && half == b.prevSpan:
				// Left child is exactly the old root.
				next = append(next, treePos{ref: b.prevRoot, offset: it.offset, span: half})
			case wraps:
				// Keep descending the leftmost spine toward the old root.
				next = append(next, treePos{offset: it.offset, span: half})
			}
		}
		nodes, err := b.tree.getLevel("fetch previous node", fetch)
		if err != nil {
			return err
		}
		for i, it := range fetch {
			n := nodes[i]
			b.cache[NodeKey{Blob: it.ref.Blob, Version: it.ref.Version, Offset: it.offset, Span: it.span}] = n
			if n.isLeaf {
				continue // build will reject it with a proper error
			}
			half := it.span / 2
			if n.left.Valid {
				next = append(next, treePos{ref: n.left, offset: it.offset, span: half})
			}
			if n.right.Valid {
				next = append(next, treePos{ref: n.right, offset: it.offset + half, span: half})
			}
		}
		frontier = next
	}
	return nil
}

// getPrev returns the previous version's node for the range, from the
// prefetch cache (with a single-fetch fallback for safety).
func (b *builder) getPrev(ref NodeRef, offset, span uint64) (*node, error) {
	key := NodeKey{Blob: ref.Blob, Version: ref.Version, Offset: offset, Span: span}
	if n, ok := b.cache[key]; ok {
		return n, nil
	}
	return b.tree.getNode(ref, offset, span)
}

// build constructs the node covering [offset, offset+span). prevHere is the
// previous version's node for this exact range (invalid if the range did not
// exist or was a hole). It returns the previous node's reference when the
// range is untouched, achieving structural sharing.
func (b *builder) build(prevHere NodeRef, offset, span uint64) (NodeRef, error) {
	touched := b.touched(offset, span)
	// When the tree grows, the old root sits at (0, prevSpan) inside the new
	// tree; the subtrees above it must be materialized even if untouched so
	// the new root reaches the old data.
	wrapsOldRoot := b.wrapsOldRoot(offset, span)
	if !touched && !wrapsOldRoot {
		return prevHere, nil // share previous subtree, or keep a hole
	}
	if span == 1 {
		leaf := b.writes[offset] // touched guarantees presence
		return b.put(offset, span, &node{isLeaf: true, leaf: leaf})
	}
	half := span / 2
	var prevLeft, prevRight NodeRef
	switch {
	case prevHere.Valid:
		pn, err := b.getPrev(prevHere, offset, span)
		if err != nil {
			return NodeRef{}, fmt.Errorf("meta: fetch previous node (off=%d span=%d): %w", offset, span, err)
		}
		if pn.isLeaf {
			return NodeRef{}, fmt.Errorf("meta: unexpected leaf at span %d", span)
		}
		prevLeft, prevRight = pn.left, pn.right
	case wrapsOldRoot && half == b.prevSpan:
		// Left child is exactly the old root.
		prevLeft = b.prevRoot
	}
	left, err := b.build(prevLeft, offset, half)
	if err != nil {
		return NodeRef{}, err
	}
	right, err := b.build(prevRight, offset+half, half)
	if err != nil {
		return NodeRef{}, err
	}
	return b.put(offset, span, &node{left: left, right: right})
}

// put stages one node write; the whole set is flushed by Publish in one
// PutNodes call.
func (b *builder) put(offset, span uint64, n *node) (NodeRef, error) {
	key := NodeKey{Blob: b.blob, Version: b.version, Offset: offset, Span: span}
	b.pending = append(b.pending, NodePut{Key: key, Encoded: encodeNode(n)})
	return NodeRef{Blob: b.blob, Version: b.version, Valid: true}, nil
}

// Lookup returns the leaf slots for chunk indices [first, first+count) in
// the tree rooted at root with the given span, in index order. Indices
// beyond the span are reported as holes.
//
// The descent is level-order: each level's node set is fetched in one
// GetNodes call, so a lookup costs O(tree depth) round trips per metadata
// provider no matter how many chunks it covers.
func (t *Tree) Lookup(root NodeRef, span uint64, first, count uint64) ([]LeafSlot, error) {
	lo, hi := first, first+count
	out := make([]LeafSlot, 0, count)
	frontier := []treePos{{ref: root, offset: 0, span: span}}
	for len(frontier) > 0 {
		var next []treePos
		var fetch []treePos
		for _, it := range frontier {
			if it.offset >= hi || it.offset+it.span <= lo {
				continue // disjoint
			}
			if !it.ref.Valid {
				// Hole subtree: report holes for the overlap.
				start, end := max(it.offset, lo), min(it.offset+it.span, hi)
				for idx := start; idx < end; idx++ {
					out = append(out, LeafSlot{Index: idx})
				}
				continue
			}
			fetch = append(fetch, it)
		}
		nodes, err := t.getLevel("lookup node", fetch)
		if err != nil {
			return nil, err
		}
		for i, it := range fetch {
			n := nodes[i]
			if it.span == 1 {
				if !n.isLeaf {
					return nil, fmt.Errorf("meta: inner node at span 1")
				}
				out = append(out, LeafSlot{Index: it.offset, Leaf: n.leaf, Present: true})
				continue
			}
			if n.isLeaf {
				return nil, fmt.Errorf("meta: leaf node at span %d", it.span)
			}
			half := it.span / 2
			next = append(next,
				treePos{ref: n.left, offset: it.offset, span: half},
				treePos{ref: n.right, offset: it.offset + half, span: half})
		}
		frontier = next
	}
	// Fill any indices beyond the tree span as holes.
	for idx := first; idx < first+count; idx++ {
		if idx >= span {
			out = append(out, LeafSlot{Index: idx})
		}
	}
	slices.SortFunc(out, func(a, b LeafSlot) int {
		switch {
		case a.Index < b.Index:
			return -1
		case a.Index > b.Index:
			return 1
		}
		return 0
	})
	return out, nil
}

// Walk visits every node reachable from root (covering [0, span)), calling
// fn with each node's key and, for leaves, the decoded descriptor. Used by
// mark-and-sweep garbage collection. Shared subtrees reachable from multiple
// roots are visited once per Walk call; the visited map deduplicates within
// a call.
func (t *Tree) Walk(root NodeRef, span uint64, fn func(k NodeKey, isLeaf bool, leaf Leaf) error) error {
	visited := make(map[NodeKey]struct{})
	return t.walk(root, 0, span, fn, visited)
}

func (t *Tree) walk(ref NodeRef, offset, span uint64, fn func(NodeKey, bool, Leaf) error, visited map[NodeKey]struct{}) error {
	if !ref.Valid {
		return nil
	}
	key := NodeKey{Blob: ref.Blob, Version: ref.Version, Offset: offset, Span: span}
	if _, seen := visited[key]; seen {
		return nil
	}
	visited[key] = struct{}{}
	n, err := t.getNode(ref, offset, span)
	if err != nil {
		return err
	}
	if err := fn(key, n.isLeaf, n.leaf); err != nil {
		return err
	}
	if n.isLeaf {
		return nil
	}
	half := span / 2
	if err := t.walk(n.left, offset, half, fn, visited); err != nil {
		return err
	}
	return t.walk(n.right, offset+half, half, fn, visited)
}

// MemNodeStore is an in-memory NodeStore for tests and single-process use.
type MemNodeStore struct {
	m map[NodeKey][]byte
}

// NewMemNodeStore returns an empty in-memory node store.
func NewMemNodeStore() *MemNodeStore {
	return &MemNodeStore{m: make(map[NodeKey][]byte)}
}

// PutNodes implements NodeStore.
func (s *MemNodeStore) PutNodes(puts []NodePut) error {
	for _, p := range puts {
		if err := s.PutNode(p.Key, p.Encoded); err != nil {
			return err
		}
	}
	return nil
}

// GetNodes implements NodeStore: missing nodes yield nil entries.
func (s *MemNodeStore) GetNodes(keys []NodeKey) ([][]byte, error) {
	out := make([][]byte, len(keys))
	for i, k := range keys {
		out[i] = s.m[k]
	}
	return out, nil
}

// PutNode stores one node (single-node convenience).
func (s *MemNodeStore) PutNode(k NodeKey, encoded []byte) error {
	if _, exists := s.m[k]; exists {
		return nil // nodes are immutable; re-put is idempotent
	}
	cp := make([]byte, len(encoded))
	copy(cp, encoded)
	s.m[k] = cp
	return nil
}

// GetNode returns one node (single-node convenience).
func (s *MemNodeStore) GetNode(k NodeKey) ([]byte, error) {
	v, ok := s.m[k]
	if !ok {
		return nil, fmt.Errorf("%w: %+v", ErrNodeNotFound, k)
	}
	return v, nil
}

// Len returns the number of stored nodes (for space-accounting tests).
func (s *MemNodeStore) Len() int { return len(s.m) }

// Delete removes a node (garbage collection sweep).
func (s *MemNodeStore) Delete(k NodeKey) { delete(s.m, k) }

// Keys returns all stored node keys (sweep enumeration).
func (s *MemNodeStore) Keys() []NodeKey {
	out := make([]NodeKey, 0, len(s.m))
	for k := range s.m {
		out = append(out, k)
	}
	return out
}
