package core

import (
	"bytes"
	"context"
	"encoding/binary"
	"fmt"
	"sync"
	"testing"

	"blobcr/internal/blcr"
	"blobcr/internal/cloud"
	"blobcr/internal/guestfs"
	"blobcr/internal/vm"
)

const chunkSize = 512

// ctx is the default context for test operations.
var ctx = context.Background()

func newCloud(t *testing.T, nodes int) *cloud.Cloud {
	t.Helper()
	c, err := cloud.New(cloud.Config{Nodes: nodes, MetaProviders: 2, Replication: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func baseImage(t *testing.T, c *cloud.Cloud, size int) cloud.SnapshotRef {
	t.Helper()
	base, err := c.UploadBaseImage(ctx, make([]byte, size), chunkSize)
	if err != nil {
		t.Fatal(err)
	}
	return base
}

func vmCfg() vm.Config {
	return vm.Config{BlockSize: 512, BootNoiseBytes: 4096, OSOverheadBytes: 16 * 1024}
}

func TestJobValidation(t *testing.T) {
	c := newCloud(t, 2)
	base := baseImage(t, c, 256*1024)
	if _, err := NewJob(ctx, c, base, JobConfig{Instances: 0}); err == nil {
		t.Error("zero instances accepted")
	}
}

func TestAppLevelCheckpointRestart(t *testing.T) {
	c := newCloud(t, 4)
	base := baseImage(t, c, 512*1024)
	job, err := NewJob(ctx, c, base, JobConfig{Instances: 2, Mode: AppLevel, VMConfig: vmCfg()})
	if err != nil {
		t.Fatal(err)
	}

	// Phase 1: run to iteration 50, checkpoint, run to 80, then "fail".
	var ckptID int
	var mu sync.Mutex
	err = job.Run(func(r *Rank) error {
		iter := uint64(50) // computed 50 iterations
		id, err := r.Checkpoint(ctx, func(fs *guestfs.FS) error {
			buf := make([]byte, 8)
			binary.LittleEndian.PutUint64(buf, iter)
			return fs.WriteFile(r.StatePath(), buf)
		})
		if err != nil {
			return err
		}
		mu.Lock()
		ckptID = id
		mu.Unlock()
		// More work after the checkpoint, plus file noise that must roll
		// back.
		if err := r.FS().WriteFile("/scratch.tmp", []byte("post-ckpt")); err != nil {
			return err
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if ckptID != 1 {
		t.Fatalf("checkpoint id = %d", ckptID)
	}

	// Fail one node hosting an instance.
	if err := c.FailNode(ctx, job.Deployment().Instances[0].Node.Name); err != nil {
		t.Fatal(err)
	}
	c.KillDeploymentInstancesOn(job.Deployment())

	// Phase 2: restart from the checkpoint; application reloads its state.
	err = job.Restart(ctx, ckptID, func(r *Rank) error {
		if !r.Restored {
			return fmt.Errorf("rank %d: Restored flag not set", r.Comm.Rank())
		}
		buf, err := r.FS().ReadFile(r.StatePath())
		if err != nil {
			return fmt.Errorf("rank %d: read state: %w", r.Comm.Rank(), err)
		}
		iter := binary.LittleEndian.Uint64(buf)
		if iter != 50 {
			return fmt.Errorf("rank %d: restored iter = %d, want 50", r.Comm.Rank(), iter)
		}
		// Post-checkpoint noise must have been rolled back.
		if _, err := r.FS().ReadFile("/scratch.tmp"); err == nil {
			return fmt.Errorf("rank %d: post-checkpoint file survived rollback", r.Comm.Rank())
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Restart: %v", err)
	}
}

func TestProcessLevelTransparentRestart(t *testing.T) {
	c := newCloud(t, 4)
	base := baseImage(t, c, 512*1024)
	job, err := NewJob(ctx, c, base, JobConfig{Instances: 2, Mode: ProcessLevel, VMConfig: vmCfg()})
	if err != nil {
		t.Fatal(err)
	}

	var ckptID int
	var mu sync.Mutex
	err = job.Run(func(r *Rank) error {
		// The application's working memory lives in the process image.
		heap := r.Proc.Alloc("solution", 4096)
		for i := range heap {
			heap[i] = byte(r.Comm.Rank() + 1)
		}
		r.Proc.SetRegisters(blcrRegs(77))
		// Transparent checkpoint: no save callback.
		id, err := r.Checkpoint(ctx, nil)
		if err != nil {
			return err
		}
		mu.Lock()
		ckptID = id
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}

	err = job.Restart(ctx, ckptID, func(r *Rank) error {
		// The framework restored the process image: memory and registers.
		heap, ok := r.Proc.Arena("solution")
		if !ok {
			return fmt.Errorf("rank %d: solution arena missing", r.Comm.Rank())
		}
		want := bytes.Repeat([]byte{byte(r.Comm.Rank() + 1)}, 4096)
		if !bytes.Equal(heap, want) {
			return fmt.Errorf("rank %d: memory corrupted", r.Comm.Rank())
		}
		if r.Proc.Registers().PC != 77 {
			return fmt.Errorf("rank %d: PC = %d", r.Comm.Rank(), r.Proc.Registers().PC)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Restart: %v", err)
	}
}

func TestMultipleRanksPerVMSingleSnapshot(t *testing.T) {
	c := newCloud(t, 2)
	base := baseImage(t, c, 512*1024)
	job, err := NewJob(ctx, c, base, JobConfig{
		Instances: 2, RanksPerVM: 4, Mode: ProcessLevel, VMConfig: vmCfg(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if job.Ranks() != 8 {
		t.Fatalf("Ranks = %d", job.Ranks())
	}
	err = job.Run(func(r *Rank) error {
		buf := r.Proc.Alloc("x", 512)
		buf[0] = byte(r.Comm.Rank())
		_, err := r.Checkpoint(ctx, nil)
		return err
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// Exactly one global checkpoint, covering both VMs, and each VM's
	// checkpoint image has exactly one snapshot (version 0): one proxy
	// request per VM, not per rank.
	cps := job.Deployment().Checkpoints()
	if len(cps) != 1 {
		t.Fatalf("%d checkpoints recorded", len(cps))
	}
	if len(cps[0].Snapshots) != 2 {
		t.Fatalf("snapshot set = %+v", cps[0].Snapshots)
	}
	cl := c.Client()
	for vmID, ref := range cps[0].Snapshots {
		info, _, err := cl.Latest(ctx, ref.Blob)
		if err != nil {
			t.Fatal(err)
		}
		if info.Version != ref.Version {
			t.Errorf("%s: image has later version %d than recorded %d (extra snapshots taken)", vmID, info.Version, ref.Version)
		}
		// All 4 ranks' dumps are inside the one snapshot.
		fs, err := InspectSnapshot(ctx, c, ref)
		if err != nil {
			t.Fatal(err)
		}
		entries, err := fs.ReadDir("/ckpt")
		if err != nil {
			t.Fatal(err)
		}
		if len(entries) != 4 {
			t.Errorf("%s snapshot holds %d rank dumps, want 4", vmID, len(entries))
		}
	}
}

func TestSuccessiveCheckpointsRecordHistory(t *testing.T) {
	c := newCloud(t, 2)
	base := baseImage(t, c, 512*1024)
	job, err := NewJob(ctx, c, base, JobConfig{Instances: 1, Mode: ProcessLevel, VMConfig: vmCfg()})
	if err != nil {
		t.Fatal(err)
	}
	err = job.Run(func(r *Rank) error {
		state := r.Proc.Alloc("iter", 8)
		for i := 0; i < 3; i++ {
			state[0] = byte(i)
			if _, err := r.Checkpoint(ctx, nil); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	cps := job.Deployment().Checkpoints()
	if len(cps) != 3 {
		t.Fatalf("%d checkpoints", len(cps))
	}
	// Restart from the FIRST checkpoint (not just the latest).
	err = job.Restart(ctx, cps[0].ID, func(r *Rank) error {
		st, _ := r.Proc.Arena("iter")
		if st[0] != 0 {
			return fmt.Errorf("restored iter = %d, want 0", st[0])
		}
		return nil
	})
	if err != nil {
		t.Fatalf("restart from first checkpoint: %v", err)
	}
}

func TestLatestCheckpoint(t *testing.T) {
	c := newCloud(t, 2)
	base := baseImage(t, c, 512*1024)
	job, err := NewJob(ctx, c, base, JobConfig{Instances: 1, Mode: ProcessLevel, VMConfig: vmCfg()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := job.LatestCheckpoint(); err != ErrNoCheckpoint {
		t.Errorf("LatestCheckpoint on fresh job = %v", err)
	}
	job.Run(func(r *Rank) error {
		r.Proc.Alloc("a", 16)
		_, err := r.Checkpoint(ctx, nil)
		return err
	})
	id, err := job.LatestCheckpoint()
	if err != nil || id != 1 {
		t.Errorf("LatestCheckpoint = %d, %v", id, err)
	}
}

func TestAppLevelRequiresSaveCallback(t *testing.T) {
	c := newCloud(t, 2)
	base := baseImage(t, c, 512*1024)
	job, err := NewJob(ctx, c, base, JobConfig{Instances: 1, Mode: AppLevel, VMConfig: vmCfg()})
	if err != nil {
		t.Fatal(err)
	}
	err = job.Run(func(r *Rank) error {
		_, err := r.Checkpoint(ctx, nil)
		if err == nil {
			return fmt.Errorf("nil save callback accepted in AppLevel mode")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestInspectSnapshotIsStandalone(t *testing.T) {
	c := newCloud(t, 2)
	base := baseImage(t, c, 512*1024)
	job, err := NewJob(ctx, c, base, JobConfig{Instances: 1, Mode: AppLevel, VMConfig: vmCfg()})
	if err != nil {
		t.Fatal(err)
	}
	err = job.Run(func(r *Rank) error {
		_, err := r.Checkpoint(ctx, func(fs *guestfs.FS) error {
			return fs.WriteFile(r.StatePath(), []byte("inspectable state"))
		})
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	cp, _ := job.Deployment().LatestCheckpoint()
	for _, ref := range cp.Snapshots {
		fs, err := InspectSnapshot(ctx, c, ref)
		if err != nil {
			t.Fatalf("InspectSnapshot: %v", err)
		}
		got, err := fs.ReadFile("/ckpt/rank-0.state")
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != "inspectable state" {
			t.Errorf("inspected state = %q", got)
		}
		// The boot-time OS files are in there too — it is a full disk image.
		if _, err := fs.Stat("/etc/hostname.conf"); err != nil {
			t.Errorf("snapshot missing OS files: %v", err)
		}
	}
}

// blcrRegs builds a register file with the given PC.
func blcrRegs(pc uint64) (r blcr.Registers) {
	r.PC = pc
	return
}

func TestAppLevelPartialRestart(t *testing.T) {
	c := newCloud(t, 4)
	base := baseImage(t, c, 512*1024)
	job, err := NewJob(ctx, c, base, JobConfig{Instances: 3, Mode: AppLevel, VMConfig: vmCfg()})
	if err != nil {
		t.Fatal(err)
	}

	var ckptID int
	var mu sync.Mutex
	err = job.Run(func(r *Rank) error {
		id, err := r.Checkpoint(ctx, func(fs *guestfs.FS) error {
			return fs.WriteFile(r.StatePath(), []byte{42})
		})
		if err != nil {
			return err
		}
		mu.Lock()
		ckptID = id
		mu.Unlock()
		return r.FS().WriteFile("/scratch.tmp", []byte("post-ckpt"))
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}

	// One member dies; the healthy members must roll back in place.
	before := append([]*cloud.Instance(nil), job.Deployment().Instances...)
	if err := c.FailNode(ctx, before[1].Node.Name); err != nil {
		t.Fatal(err)
	}
	c.KillDeploymentInstancesOn(job.Deployment())

	err = job.RestartPartial(ctx, ckptID, func(r *Rank) error {
		if !r.Restored {
			return fmt.Errorf("rank %d: Restored flag not set", r.Comm.Rank())
		}
		buf, err := r.FS().ReadFile(r.StatePath())
		if err != nil || len(buf) != 1 || buf[0] != 42 {
			return fmt.Errorf("rank %d: restored state %v, %v", r.Comm.Rank(), buf, err)
		}
		if _, err := r.FS().ReadFile("/scratch.tmp"); err == nil {
			return fmt.Errorf("rank %d: post-checkpoint file survived in-place rollback", r.Comm.Rank())
		}
		return nil
	})
	if err != nil {
		t.Fatalf("RestartPartial: %v", err)
	}
	after := job.Deployment().Instances
	if after[0] != before[0] || after[2] != before[2] {
		t.Error("healthy members were replaced instead of rolled back in place")
	}
	if after[1] == before[1] || after[1].Node == before[1].Node {
		t.Error("failed member was not redeployed on a spare node")
	}
}
