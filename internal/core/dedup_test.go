package core

import (
	"bytes"
	"fmt"
	"testing"

	"blobcr/internal/blobseer"
	"blobcr/internal/cloud"
	"blobcr/internal/guestfs"
)

// TestDedupJobCheckpointRestartPrune runs a full job with the
// content-addressed repository enabled: convergent state across ranks and
// re-dumped state across rounds must dedup (bodies shipped once), and
// restart and prune must keep working on deduplicated snapshots.
func TestDedupJobCheckpointRestartPrune(t *testing.T) {
	c, err := cloud.New(cloud.Config{Nodes: 4, MetaProviders: 2, Seed: 3, Dedup: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	base, err := c.UploadBaseImage(ctx, make([]byte, 512*1024), chunkSize)
	if err != nil {
		t.Fatal(err)
	}
	job, err := NewJob(ctx, c, base, JobConfig{Instances: 2, Mode: AppLevel, VMConfig: vmCfg()})
	if err != nil {
		t.Fatal(err)
	}

	// Every rank dumps the same state twice (convergent application state,
	// rewritten in place each round — the Figure 5 workload).
	state := bytes.Repeat([]byte{0xAB}, 64*1024)
	err = job.Run(func(r *Rank) error {
		for round := 0; round < 2; round++ {
			_, err := r.Checkpoint(ctx, func(fs *guestfs.FS) error {
				return fs.WriteFile(r.StatePath(), state)
			})
			if err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	// The repository shipped strictly less than the logical volume: chunks
	// repeated across rounds and across the two VMs were never re-sent.
	var total blobseer.CommitStats
	for _, inst := range job.Deployment().Instances {
		total.Add(inst.Mirror.CommitStats())
	}
	if total.DedupChunks == 0 {
		t.Fatalf("no dedup hits across %d committed chunks", total.Chunks)
	}
	if total.TransferBytes >= total.LogicalBytes {
		t.Fatalf("transfer %d >= logical %d: dedup saved nothing", total.TransferBytes, total.LogicalBytes)
	}

	// Restart from the latest checkpoint on deduplicated snapshots.
	ckpt, err := job.LatestCheckpoint()
	if err != nil {
		t.Fatal(err)
	}
	err = job.Restart(ctx, ckpt, func(r *Rank) error {
		got, err := r.FS().ReadFile(r.StatePath())
		if err != nil {
			return err
		}
		if !bytes.Equal(got, state) {
			return fmt.Errorf("rank %d: state corrupted after restart", r.Comm.Rank())
		}
		// One more checkpoint after restart, then prune below it.
		_, err = r.Checkpoint(ctx, func(fs *guestfs.FS) error {
			return fs.WriteFile(r.StatePath(), state)
		})
		return err
	})
	if err != nil {
		t.Fatal(err)
	}

	latest, err := job.LatestCheckpoint()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Prune(ctx, job.Deployment(), latest); err != nil {
		t.Fatalf("prune on dedup repository: %v", err)
	}
	err = job.Restart(ctx, latest, func(r *Rank) error {
		got, err := r.FS().ReadFile(r.StatePath())
		if err != nil {
			return fmt.Errorf("rank %d after prune: %w", r.Comm.Rank(), err)
		}
		if !bytes.Equal(got, state) {
			return fmt.Errorf("rank %d: state corrupted after prune+restart", r.Comm.Rank())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
