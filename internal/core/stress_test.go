package core

import (
	"encoding/binary"
	"fmt"
	"testing"

	"blobcr/internal/blcr"
	"blobcr/internal/cloud"
)

// TestRepeatedFailuresAndRollbacks drives a ProcessLevel job through three
// failure/rollback cycles, checkpointing progress between failures, and
// verifies monotone progress is never lost beyond the last checkpoint.
func TestRepeatedFailuresAndRollbacks(t *testing.T) {
	c, err := cloud.New(cloud.Config{Nodes: 8, MetaProviders: 2, Replication: 2, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	base, err := c.UploadBaseImage(ctx, make([]byte, 512*1024), chunkSize)
	if err != nil {
		t.Fatal(err)
	}
	job, err := NewJob(ctx, c, base, JobConfig{Instances: 2, Mode: ProcessLevel, VMConfig: vmCfg()})
	if err != nil {
		t.Fatal(err)
	}

	const perPhase = 10
	body := func(r *Rank) error {
		var counter []byte
		if r.Restored {
			var ok bool
			counter, ok = r.Proc.Arena("counter")
			if !ok {
				return fmt.Errorf("rank %d: lost counter across restart", r.Comm.Rank())
			}
		} else {
			counter = r.Proc.Alloc("counter", 8)
		}
		v := binary.LittleEndian.Uint64(counter)
		binary.LittleEndian.PutUint64(counter, v+perPhase)
		r.Proc.SetRegisters(blcr.Registers{PC: v + perPhase})
		_, err := r.Checkpoint(ctx, nil)
		return err
	}

	if err := job.Run(body); err != nil {
		t.Fatal(err)
	}
	for round := 1; round <= 3; round++ {
		victim := job.Deployment().Instances[round%2].Node.Name
		if err := c.FailNode(ctx, victim); err != nil {
			t.Fatal(err)
		}
		c.KillDeploymentInstancesOn(job.Deployment())
		ckpt, err := job.LatestCheckpoint()
		if err != nil {
			t.Fatal(err)
		}
		if err := job.Restart(ctx, ckpt, body); err != nil {
			t.Fatalf("round %d restart: %v", round, err)
		}
	}
	// After initial run + 3 rollback rounds, progress = 4 phases.
	ckpt, _ := job.LatestCheckpoint()
	cp := job.Deployment().Checkpoints()[ckpt-1]
	for vmID, ref := range cp.Snapshots {
		fs, err := InspectSnapshot(ctx, c, ref)
		if err != nil {
			t.Fatal(err)
		}
		// Both ranks' dumps exist; restore one and check its counter.
		dump, err := fs.ReadFile("/ckpt/rank-0.state")
		if err != nil {
			if _, e2 := fs.ReadFile("/ckpt/rank-1.state"); e2 != nil {
				t.Fatalf("%s: no dumps in final snapshot", vmID)
			}
			continue
		}
		p, err := blcr.Restore(dump)
		if err != nil {
			t.Fatal(err)
		}
		counter, _ := p.Arena("counter")
		got := binary.LittleEndian.Uint64(counter)
		if got != 4*perPhase {
			t.Errorf("%s: final counter = %d, want %d", vmID, got, 4*perPhase)
		}
	}
}

// TestPruneDuringJobKeepsRestartable prunes old checkpoints mid-job and
// verifies the kept one still restarts (middleware GC + framework).
func TestPruneDuringJobKeepsRestartable(t *testing.T) {
	c, err := cloud.New(cloud.Config{Nodes: 4, MetaProviders: 2, Replication: 1, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	base, err := c.UploadBaseImage(ctx, make([]byte, 512*1024), chunkSize)
	if err != nil {
		t.Fatal(err)
	}
	job, err := NewJob(ctx, c, base, JobConfig{Instances: 2, Mode: ProcessLevel, VMConfig: vmCfg()})
	if err != nil {
		t.Fatal(err)
	}
	err = job.Run(func(r *Rank) error {
		buf := r.Proc.Alloc("x", 32*1024)
		for i := 0; i < 4; i++ {
			buf[0] = byte(i + 1)
			if _, err := r.Checkpoint(ctx, nil); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	latest, _ := job.LatestCheckpoint()
	stats, err := c.Prune(ctx, job.Deployment(), latest)
	if err != nil {
		t.Fatalf("Prune: %v", err)
	}
	if stats.DeletedChunks == 0 {
		t.Error("prune reclaimed nothing after 4 checkpoints")
	}
	err = job.Restart(ctx, latest, func(r *Rank) error {
		buf, ok := r.Proc.Arena("x")
		if !ok || buf[0] != 4 {
			return fmt.Errorf("rank %d: wrong state after prune+restart", r.Comm.Rank())
		}
		return nil
	})
	if err != nil {
		t.Fatalf("restart after prune: %v", err)
	}
}

// TestManyRanksManyVMs runs a wider job (4 VMs x 2 ranks) through
// checkpoint and restart to shake out coordination races.
func TestManyRanksManyVMs(t *testing.T) {
	c, err := cloud.New(cloud.Config{Nodes: 6, MetaProviders: 3, Replication: 1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	base, err := c.UploadBaseImage(ctx, make([]byte, 512*1024), chunkSize)
	if err != nil {
		t.Fatal(err)
	}
	job, err := NewJob(ctx, c, base, JobConfig{Instances: 4, RanksPerVM: 2, Mode: ProcessLevel, VMConfig: vmCfg()})
	if err != nil {
		t.Fatal(err)
	}
	err = job.Run(func(r *Rank) error {
		buf := r.Proc.Alloc("id", 8)
		binary.LittleEndian.PutUint64(buf, uint64(r.Comm.Rank()))
		// Neighbour exchange before checkpointing, to put traffic on the
		// channels the drain must handle.
		next := (r.Comm.Rank() + 1) % r.Comm.Size()
		prev := (r.Comm.Rank() + r.Comm.Size() - 1) % r.Comm.Size()
		if err := r.Comm.Send(next, 1, buf); err != nil {
			return err
		}
		if _, err := r.Comm.Recv(prev, 1); err != nil {
			return err
		}
		_, err := r.Checkpoint(ctx, nil)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	ckpt, _ := job.LatestCheckpoint()
	err = job.Restart(ctx, ckpt, func(r *Rank) error {
		buf, ok := r.Proc.Arena("id")
		if !ok {
			return fmt.Errorf("rank %d: no id arena", r.Comm.Rank())
		}
		if got := binary.LittleEndian.Uint64(buf); got != uint64(r.Comm.Rank()) {
			return fmt.Errorf("rank %d restored rank-%d's memory", r.Comm.Rank(), got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
