// Package core is the BlobCR framework: the paper's primary contribution,
// assembled from the substrates.
//
// It runs tightly-coupled MPI applications on an IaaS cloud
// (internal/cloud), checkpoints them through incremental virtual-disk
// snapshots (internal/mirror + internal/blobseer, via the per-node
// checkpointing proxy) and rolls them back — including all file system
// modifications — on failures.
//
// Both checkpointing styles of the paper are supported:
//
//   - application level (BlobCR-app): the application dumps its own state
//     into guest files inside the Checkpoint call;
//   - process level (BlobCR-blcr): the framework dumps each rank's whole
//     process image with internal/blcr, transparently to the application.
//
// A Job maps MPI ranks onto VM instances (several ranks per multi-core
// instance, as in the CM1 experiments), coordinates the global checkpoint,
// records the snapshot set with the middleware, and restarts from any
// recorded checkpoint.
package core

import (
	"errors"
	"fmt"
	"sync"

	"blobcr/internal/blcr"
	"blobcr/internal/cloud"
	"blobcr/internal/guestfs"
	"blobcr/internal/mirror"
	"blobcr/internal/mpi"
	"blobcr/internal/vm"
)

// Mode selects how per-process state is captured.
type Mode int

// Checkpoint modes.
const (
	// AppLevel: the application saves its own state via the save callback
	// passed to Rank.Checkpoint.
	AppLevel Mode = iota
	// ProcessLevel: the framework dumps each rank's blcr process image.
	ProcessLevel
)

// Errors.
var (
	ErrNoCheckpoint = errors.New("core: no checkpoint recorded")
	ErrBadConfig    = errors.New("core: invalid job configuration")
)

// JobConfig describes an MPI job.
type JobConfig struct {
	Instances  int // number of VM instances
	RanksPerVM int // MPI processes per instance (cores per VM); default 1
	Mode       Mode
	VMConfig   vm.Config
	// CkptDir is the guest directory for state dumps (default "/ckpt").
	CkptDir string
}

func (c *JobConfig) ranksPerVM() int {
	if c.RanksPerVM < 1 {
		return 1
	}
	return c.RanksPerVM
}

func (c *JobConfig) ckptDir() string {
	if c.CkptDir == "" {
		return "/ckpt"
	}
	return c.CkptDir
}

// Job is a deployed MPI application with checkpoint-restart support.
type Job struct {
	cloud *cloud.Cloud
	cfg   JobConfig
	dep   *cloud.Deployment

	mu       sync.Mutex
	barriers []*vmBarrier // one per instance, sized ranksPerVM
}

// NewJob deploys cfg.Instances VMs from the base image and prepares the
// rank mapping. The instances boot immediately.
func NewJob(cl *cloud.Cloud, baseBlob, baseVersion uint64, cfg JobConfig) (*Job, error) {
	if cfg.Instances < 1 {
		return nil, fmt.Errorf("%w: %d instances", ErrBadConfig, cfg.Instances)
	}
	dep, err := cl.Deploy(cfg.Instances, baseBlob, baseVersion, cfg.VMConfig)
	if err != nil {
		return nil, err
	}
	j := &Job{cloud: cl, cfg: cfg, dep: dep}
	j.resetBarriers()
	return j, nil
}

func (j *Job) resetBarriers() {
	j.barriers = make([]*vmBarrier, len(j.dep.Instances))
	for i := range j.barriers {
		j.barriers[i] = newVMBarrier(j.cfg.ranksPerVM())
	}
}

// Ranks returns the total number of MPI ranks.
func (j *Job) Ranks() int { return j.cfg.Instances * j.cfg.ranksPerVM() }

// Deployment exposes the underlying cloud deployment.
func (j *Job) Deployment() *cloud.Deployment { return j.dep }

// instanceOf maps a rank to its hosting instance index.
func (j *Job) instanceOf(rank int) int { return rank / j.cfg.ranksPerVM() }

// Rank is the per-process environment handed to the application body.
type Rank struct {
	Comm *mpi.Comm
	// Proc is the rank's process image. In ProcessLevel mode the framework
	// dumps and restores it; in AppLevel mode it is available as plain
	// working memory.
	Proc *blcr.Process
	// Restored is true when the body runs after a rollback.
	Restored bool

	job   *Job
	inst  *cloud.Instance
	vmIdx int
	local int // index of this rank within its VM
}

// FS returns the rank's guest file system.
func (r *Rank) FS() *guestfs.FS { return r.inst.VM.FS() }

// Instance returns the hosting cloud instance.
func (r *Rank) Instance() *cloud.Instance { return r.inst }

// CkptDir returns the guest directory used for state dumps.
func (r *Rank) CkptDir() string { return r.job.cfg.ckptDir() }

// StatePath returns this rank's state dump path in the guest.
func (r *Rank) StatePath() string {
	return fmt.Sprintf("%s/rank-%d.state", r.CkptDir(), r.Comm.Rank())
}

// Run starts the application: body runs once per rank. On a fresh start
// Restored is false.
func (j *Job) Run(body func(r *Rank) error) error {
	return j.run(body, false)
}

func (j *Job) run(body func(r *Rank) error, restored bool) error {
	n := j.Ranks()
	world := mpi.NewWorld(n)
	defer world.Close()
	return world.Run(func(c *mpi.Comm) error {
		vmIdx := j.instanceOf(c.Rank())
		inst := j.dep.Instances[vmIdx]
		proc := blcr.NewProcess(1000 + c.Rank())
		if err := inst.VM.AddProcess(proc); err != nil {
			return err
		}
		r := &Rank{
			Comm:     c,
			Proc:     proc,
			Restored: restored,
			job:      j,
			inst:     inst,
			vmIdx:    vmIdx,
			local:    c.Rank() % j.cfg.ranksPerVM(),
		}
		if err := r.FS().MkdirAll(j.cfg.ckptDir()); err != nil {
			return err
		}
		if restored && j.cfg.Mode == ProcessLevel {
			// Transparent restore: load the process image dumped by the
			// last checkpoint and re-inject captured channel state.
			p, err := blcr.RestoreFromFile(r.FS(), r.StatePath())
			if err != nil {
				return fmt.Errorf("core: rank %d restore: %w", c.Rank(), err)
			}
			if err := c.RestorePending(p); err != nil {
				return err
			}
			if err := inst.VM.AddProcess(p); err != nil {
				return err
			}
			r.Proc = p
		}
		return body(r)
	})
}

// Checkpoint takes a coordinated global checkpoint. In AppLevel mode, save
// must write the rank's state into the guest file system (typically at
// StatePath); in ProcessLevel mode save is ignored and the framework dumps
// the rank's process image transparently. It returns the recorded global
// checkpoint id (the same on every rank).
//
// Every rank must call Checkpoint at the same logical point.
func (r *Rank) Checkpoint(save func(fs *guestfs.FS) error) (int, error) {
	j := r.job
	hooks := mpi.CRHooks{
		Sync: func() error { return r.FS().Sync() },
	}
	switch j.cfg.Mode {
	case AppLevel:
		if save == nil {
			return 0, fmt.Errorf("%w: AppLevel checkpoint needs a save callback", ErrBadConfig)
		}
		hooks.SaveState = func() error { return save(r.FS()) }
	case ProcessLevel:
		hooks.Process = r.Proc
		hooks.SaveState = func() error {
			_, err := r.Proc.CheckpointToFile(r.FS(), r.StatePath())
			return err
		}
	default:
		return 0, fmt.Errorf("%w: unknown mode %d", ErrBadConfig, j.cfg.Mode)
	}

	// One disk snapshot per VM: the first rank of each VM issues the proxy
	// request once all co-located ranks have dumped and synced.
	barrier := j.barriers[r.vmIdx]
	hooks.Snapshot = func() (uint64, error) {
		return barrier.snapshotOnce(func() (uint64, uint64, error) {
			return r.inst.Proxy.RequestCheckpoint()
		})
	}

	version, err := r.Comm.CheckpointCoordinated(hooks)
	if err != nil {
		return 0, err
	}

	// Gather the per-VM snapshot refs at rank 0 and record the global
	// checkpoint with the middleware.
	blob, _ := r.inst.Mirror.CheckpointImage()
	refBytes := encodeRef(blob, version)
	gathered, err := r.Comm.Gather(0, refBytes)
	if err != nil {
		return 0, err
	}
	var ckptID int
	if r.Comm.Rank() == 0 {
		snaps := make(map[string]cloud.SnapshotRef, len(j.dep.Instances))
		for rank, raw := range gathered {
			b, v := decodeRef(raw)
			vmID := j.dep.Instances[j.instanceOf(rank)].VMID
			snaps[vmID] = cloud.SnapshotRef{Blob: b, Version: v}
		}
		id, err := j.cloud.RecordCheckpoint(j.dep, snaps)
		if err != nil {
			return 0, err
		}
		ckptID = id
	}
	// Share the checkpoint id with every rank.
	idBytes, err := r.Comm.Bcast(0, []byte{byte(ckptID), byte(ckptID >> 8), byte(ckptID >> 16), byte(ckptID >> 24)})
	if err != nil {
		return 0, err
	}
	return int(uint32(idBytes[0]) | uint32(idBytes[1])<<8 | uint32(idBytes[2])<<16 | uint32(idBytes[3])<<24), nil
}

func encodeRef(blob, version uint64) []byte {
	out := make([]byte, 16)
	for i := 0; i < 8; i++ {
		out[i] = byte(blob >> (8 * i))
		out[8+i] = byte(version >> (8 * i))
	}
	return out
}

func decodeRef(raw []byte) (uint64, uint64) {
	var b, v uint64
	for i := 0; i < 8 && i < len(raw); i++ {
		b |= uint64(raw[i]) << (8 * i)
	}
	for i := 0; i < 8 && 8+i < len(raw); i++ {
		v |= uint64(raw[8+i]) << (8 * i)
	}
	return b, v
}

// LatestCheckpoint returns the id of the most recent recorded global
// checkpoint.
func (j *Job) LatestCheckpoint() (int, error) {
	cp, ok := j.dep.LatestCheckpoint()
	if !ok {
		return 0, ErrNoCheckpoint
	}
	return cp.ID, nil
}

// Restart rolls the job back to the given recorded checkpoint: all
// instances are redeployed from their disk snapshots on healthy nodes,
// rebooted, and body runs again with Restored=true. In ProcessLevel mode
// the framework restores each rank's process image before body runs.
func (j *Job) Restart(ckptID int, body func(r *Rank) error) error {
	newDep, err := j.cloud.Restart(j.dep, ckptID)
	if err != nil {
		return err
	}
	j.dep = newDep
	j.resetBarriers()
	return j.run(body, true)
}

// vmBarrier coordinates the ranks sharing one VM so exactly one disk
// snapshot per VM is taken per global checkpoint, after all co-located
// ranks have dumped their state.
type vmBarrier struct {
	size int
	mu   sync.Mutex
	cond *sync.Cond

	arrived int
	gen     int
	version uint64
	blob    uint64
	err     error
}

func newVMBarrier(size int) *vmBarrier {
	b := &vmBarrier{size: size}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// snapshotOnce blocks until all ranks of the VM arrive; the last arrival
// issues the snapshot request and the resulting version is returned to all.
func (b *vmBarrier) snapshotOnce(request func() (uint64, uint64, error)) (uint64, error) {
	b.mu.Lock()
	gen := b.gen
	b.arrived++
	if b.arrived == b.size {
		blob, version, err := func() (uint64, uint64, error) {
			b.mu.Unlock()
			defer b.mu.Lock()
			return request()
		}()
		b.blob, b.version, b.err = blob, version, err
		b.arrived = 0
		b.gen++
		b.mu.Unlock()
		b.cond.Broadcast()
		return version, err
	}
	for b.gen == gen {
		b.cond.Wait()
	}
	version, err := b.version, b.err
	b.mu.Unlock()
	return version, err
}

// InspectSnapshot mounts a disk snapshot from the repository read-only and
// returns its guest file system — the paper's scenario of downloading and
// inspecting checkpoint images as standalone entities.
func InspectSnapshot(cl *cloud.Cloud, ref cloud.SnapshotRef) (*guestfs.FS, error) {
	mod, err := mirror.Attach(cl.Client(), ref.Blob, ref.Version)
	if err != nil {
		return nil, err
	}
	return guestfs.Mount(mod)
}
