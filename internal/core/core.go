// Package core is the BlobCR framework: the paper's primary contribution,
// assembled from the substrates.
//
// It runs tightly-coupled MPI applications on an IaaS cloud
// (internal/cloud), checkpoints them through incremental virtual-disk
// snapshots (internal/mirror + internal/blobseer, via the per-node
// checkpointing proxy) and rolls them back — including all file system
// modifications — on failures.
//
// Both checkpointing styles of the paper are supported:
//
//   - application level (BlobCR-app): the application dumps its own state
//     into guest files inside the Checkpoint call;
//   - process level (BlobCR-blcr): the framework dumps each rank's whole
//     process image with internal/blcr, transparently to the application.
//
// Checkpoints are asynchronous end to end: the proxy resumes each VM as
// soon as its dirty chunks are captured locally, and the upload to the
// repository overlaps with computation. Rank.Checkpoint hides this behind
// the classic synchronous call; Rank.CheckpointAsync exposes the
// PendingCheckpoint handle so the application can compute while the global
// checkpoint commits, resolving it at the next natural pause.
//
// A Job maps MPI ranks onto VM instances (several ranks per multi-core
// instance, as in the CM1 experiments), coordinates the global checkpoint,
// records the snapshot set with the middleware, and restarts from any
// recorded checkpoint.
package core

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"blobcr/internal/blcr"
	"blobcr/internal/blobseer"
	"blobcr/internal/cloud"
	"blobcr/internal/guestfs"
	"blobcr/internal/mirror"
	"blobcr/internal/mpi"
	"blobcr/internal/vm"
)

// Mode selects how per-process state is captured.
type Mode int

// Checkpoint modes.
const (
	// AppLevel: the application saves its own state via the save callback
	// passed to Rank.Checkpoint.
	AppLevel Mode = iota
	// ProcessLevel: the framework dumps each rank's blcr process image.
	ProcessLevel
)

// Errors.
var (
	ErrNoCheckpoint   = errors.New("core: no checkpoint recorded")
	ErrBadConfig      = errors.New("core: invalid job configuration")
	ErrCkptIncomplete = errors.New("core: global checkpoint failed on another rank")
)

// JobConfig describes an MPI job.
type JobConfig struct {
	Instances  int // number of VM instances
	RanksPerVM int // MPI processes per instance (cores per VM); default 1
	Mode       Mode
	VMConfig   vm.Config
	// CkptDir is the guest directory for state dumps (default "/ckpt").
	CkptDir string
}

func (c *JobConfig) ranksPerVM() int {
	if c.RanksPerVM < 1 {
		return 1
	}
	return c.RanksPerVM
}

func (c *JobConfig) ckptDir() string {
	if c.CkptDir == "" {
		return "/ckpt"
	}
	return c.CkptDir
}

// Job is a deployed MPI application with checkpoint-restart support.
type Job struct {
	cloud *cloud.Cloud
	cfg   JobConfig
	dep   *cloud.Deployment

	mu       sync.Mutex
	barriers []*vmBarrier // one per instance, sized ranksPerVM
}

// NewJob deploys cfg.Instances VMs from the base image and prepares the
// rank mapping. The instances boot immediately.
func NewJob(ctx context.Context, cl *cloud.Cloud, base cloud.SnapshotRef, cfg JobConfig) (*Job, error) {
	if cfg.Instances < 1 {
		return nil, fmt.Errorf("%w: %d instances", ErrBadConfig, cfg.Instances)
	}
	dep, err := cl.Deploy(ctx, cfg.Instances, base, cfg.VMConfig)
	if err != nil {
		return nil, err
	}
	j := &Job{cloud: cl, cfg: cfg, dep: dep}
	j.resetBarriers()
	return j, nil
}

func (j *Job) resetBarriers() {
	j.barriers = make([]*vmBarrier, len(j.dep.Instances))
	for i := range j.barriers {
		j.barriers[i] = newVMBarrier(j.cfg.ranksPerVM())
	}
}

// Ranks returns the total number of MPI ranks.
func (j *Job) Ranks() int { return j.cfg.Instances * j.cfg.ranksPerVM() }

// Deployment exposes the underlying cloud deployment.
func (j *Job) Deployment() *cloud.Deployment { return j.dep }

// instanceOf maps a rank to its hosting instance index.
func (j *Job) instanceOf(rank int) int { return rank / j.cfg.ranksPerVM() }

// Rank is the per-process environment handed to the application body.
type Rank struct {
	Comm *mpi.Comm
	// Proc is the rank's process image. In ProcessLevel mode the framework
	// dumps and restores it; in AppLevel mode it is available as plain
	// working memory.
	Proc *blcr.Process
	// Restored is true when the body runs after a rollback.
	Restored bool

	job   *Job
	inst  *cloud.Instance
	vmIdx int
	local int // index of this rank within its VM
}

// FS returns the rank's guest file system.
func (r *Rank) FS() *guestfs.FS { return r.inst.VM.FS() }

// Instance returns the hosting cloud instance.
func (r *Rank) Instance() *cloud.Instance { return r.inst }

// CkptDir returns the guest directory used for state dumps.
func (r *Rank) CkptDir() string { return r.job.cfg.ckptDir() }

// StatePath returns this rank's state dump path in the guest.
func (r *Rank) StatePath() string {
	return fmt.Sprintf("%s/rank-%d.state", r.CkptDir(), r.Comm.Rank())
}

// Run starts the application: body runs once per rank. On a fresh start
// Restored is false.
func (j *Job) Run(body func(r *Rank) error) error {
	return j.run(body, false)
}

func (j *Job) run(body func(r *Rank) error, restored bool) error {
	n := j.Ranks()
	world := mpi.NewWorld(n)
	defer world.Close()
	return world.Run(func(c *mpi.Comm) error {
		vmIdx := j.instanceOf(c.Rank())
		inst := j.dep.Instances[vmIdx]
		proc := blcr.NewProcess(1000 + c.Rank())
		if err := inst.VM.AddProcess(proc); err != nil {
			return err
		}
		r := &Rank{
			Comm:     c,
			Proc:     proc,
			Restored: restored,
			job:      j,
			inst:     inst,
			vmIdx:    vmIdx,
			local:    c.Rank() % j.cfg.ranksPerVM(),
		}
		if err := r.FS().MkdirAll(j.cfg.ckptDir()); err != nil {
			return err
		}
		if restored && j.cfg.Mode == ProcessLevel {
			// Transparent restore: load the process image dumped by the
			// last checkpoint and re-inject captured channel state.
			p, err := blcr.RestoreFromFile(r.FS(), r.StatePath())
			if err != nil {
				return fmt.Errorf("core: rank %d restore: %w", c.Rank(), err)
			}
			if err := c.RestorePending(p); err != nil {
				return err
			}
			if err := inst.VM.AddProcess(p); err != nil {
				return err
			}
			r.Proc = p
		}
		return body(r)
	})
}

// PendingCheckpoint is an asynchronous global checkpoint handle: the
// coordinated line is established (state dumped, file systems synced, disk
// snapshots initiated, VMs resumed), but the uploads may still be in
// flight. Wait resolves it to the recorded global checkpoint id.
//
// Wait is a collective: every rank must resolve its handle exactly once,
// at the same logical point, before issuing the next checkpoint.
type PendingCheckpoint struct {
	rank *Rank
	wait mpi.SnapshotWait
	err  error // pre-barrier failure on this rank, reported at Wait
}

// Wait blocks until every instance's snapshot has been committed, records
// the global checkpoint with the middleware, and returns its id (the same
// on every rank).
func (pc *PendingCheckpoint) Wait() (int, error) {
	r := pc.rank
	j := r.job

	var ref cloud.SnapshotRef
	waitErr := pc.err
	if waitErr == nil && pc.wait != nil {
		version, err := pc.wait()
		if err != nil {
			waitErr = err
		} else {
			blob, _ := r.inst.Mirror.CheckpointImage()
			ref = cloud.SnapshotRef{Blob: blob, Version: version}
		}
	}

	// Gather the per-VM snapshot refs at rank 0 — every rank participates,
	// flagging whether its snapshot succeeded, so one rank's failure cannot
	// wedge the collective.
	payload := make([]byte, 0, 17)
	if waitErr == nil {
		payload = append(payload, 1)
	} else {
		payload = append(payload, 0)
	}
	payload = append(payload, ref.Marshal()...)
	gathered, err := r.Comm.Gather(0, payload)
	if err != nil {
		return 0, err
	}
	var ckptID int
	var recordErr error // rank 0 only: why the checkpoint was not recorded
	if r.Comm.Rank() == 0 {
		snaps := make(map[string]cloud.SnapshotRef, len(j.dep.Instances))
		complete := true
		for rank, raw := range gathered {
			if len(raw) < 17 || raw[0] == 0 {
				complete = false
				continue
			}
			gref, err := blobseer.UnmarshalSnapshotRef(raw[1:17])
			if err != nil {
				complete = false
				continue
			}
			vmID := j.dep.Instances[j.instanceOf(rank)].VMID
			snaps[vmID] = gref
		}
		if complete {
			id, err := j.cloud.RecordCheckpoint(j.dep, snaps)
			if err != nil {
				recordErr = err
			} else {
				ckptID = id
			}
		}
	}
	// Share the checkpoint id with every rank; zero means the global
	// checkpoint was not recorded.
	idBytes, err := r.Comm.Bcast(0, []byte{byte(ckptID), byte(ckptID >> 8), byte(ckptID >> 16), byte(ckptID >> 24)})
	if err != nil {
		return 0, err
	}
	id := int(uint32(idBytes[0]) | uint32(idBytes[1])<<8 | uint32(idBytes[2])<<16 | uint32(idBytes[3])<<24)
	if waitErr != nil {
		return 0, waitErr
	}
	if recordErr != nil {
		return 0, recordErr // rank 0 knows the real cause
	}
	if id == 0 {
		return 0, ErrCkptIncomplete
	}
	return id, nil
}

// CheckpointAsync establishes a coordinated global checkpoint line and
// returns a PendingCheckpoint handle without waiting for the snapshot
// uploads: each VM resumes as soon as its dirty chunks are captured, and
// the application may compute while the repository absorbs the commits.
// In AppLevel mode, save must write the rank's state into the guest file
// system (typically at StatePath); in ProcessLevel mode save is ignored and
// the framework dumps the rank's process image transparently.
//
// Every rank must call CheckpointAsync at the same logical point and must
// resolve the returned handle with Wait before checkpointing again.
func (r *Rank) CheckpointAsync(ctx context.Context, save func(fs *guestfs.FS) error) (*PendingCheckpoint, error) {
	j := r.job
	hooks := mpi.CRHooks{
		Sync: func() error { return r.FS().Sync() },
	}
	switch j.cfg.Mode {
	case AppLevel:
		if save == nil {
			return nil, fmt.Errorf("%w: AppLevel checkpoint needs a save callback", ErrBadConfig)
		}
		hooks.SaveState = func() error { return save(r.FS()) }
	case ProcessLevel:
		hooks.Process = r.Proc
		hooks.SaveState = func() error {
			_, err := r.Proc.CheckpointToFile(r.FS(), r.StatePath())
			return err
		}
	default:
		return nil, fmt.Errorf("%w: unknown mode %d", ErrBadConfig, j.cfg.Mode)
	}

	// One disk snapshot per VM: the first rank of each VM issues the proxy
	// request once all co-located ranks have dumped and synced. The request
	// returns a handle as soon as the VM has resumed; every co-located rank
	// then waits on the same handle.
	barrier := j.barriers[r.vmIdx]
	hooks.Snapshot = func() (mpi.SnapshotWait, error) {
		handle, err := barrier.snapshotOnce(func() (uint64, error) {
			return r.inst.Proxy.RequestCheckpointAsync(ctx)
		})
		if err != nil {
			return nil, err
		}
		return func() (uint64, error) {
			ref, err := r.inst.Proxy.WaitCheckpoint(ctx, handle)
			if err != nil {
				return 0, err
			}
			return ref.Version, nil
		}, nil
	}

	wait, err := r.Comm.CheckpointCoordinatedAsync(hooks)
	return &PendingCheckpoint{rank: r, wait: wait, err: err}, nil
}

// Checkpoint takes a coordinated global checkpoint and waits for it to be
// recorded: CheckpointAsync immediately resolved. The VMs still resume
// before the uploads — only the calling ranks block. It returns the
// recorded global checkpoint id (the same on every rank).
//
// Every rank must call Checkpoint at the same logical point.
func (r *Rank) Checkpoint(ctx context.Context, save func(fs *guestfs.FS) error) (int, error) {
	pc, err := r.CheckpointAsync(ctx, save)
	if err != nil {
		return 0, err
	}
	return pc.Wait()
}

// LatestCheckpoint returns the id of the most recent recorded global
// checkpoint.
func (j *Job) LatestCheckpoint() (int, error) {
	cp, ok := j.dep.LatestCheckpoint()
	if !ok {
		return 0, ErrNoCheckpoint
	}
	return cp.ID, nil
}

// Restart rolls the job back to the given recorded checkpoint: all
// instances are redeployed from their disk snapshots on healthy nodes,
// rebooted, and body runs again with Restored=true. In ProcessLevel mode
// the framework restores each rank's process image before body runs.
func (j *Job) Restart(ctx context.Context, ckptID int, body func(r *Rank) error) error {
	newDep, err := j.cloud.Restart(ctx, j.dep, ckptID)
	if err != nil {
		return err
	}
	j.dep = newDep
	j.resetBarriers()
	return j.run(body, true)
}

// RestartPartial rolls the job back like Restart, but tears down only the
// members that actually died: instances on failed nodes are redeployed from
// their snapshots elsewhere, while instances on healthy nodes roll back in
// place, keeping their warm local chunk caches (cloud.PartialRestart). For
// single-node failures this makes time-to-resume proportional to the failed
// fraction of the job, not its size.
func (j *Job) RestartPartial(ctx context.Context, ckptID int, body func(r *Rank) error) error {
	newDep, _, err := j.cloud.PartialRestart(ctx, j.dep, ckptID)
	if err != nil {
		return err
	}
	j.dep = newDep
	j.resetBarriers()
	return j.run(body, true)
}

// vmBarrier coordinates the ranks sharing one VM so exactly one disk
// snapshot per VM is taken per global checkpoint, after all co-located
// ranks have dumped their state.
type vmBarrier struct {
	size int
	mu   sync.Mutex
	cond *sync.Cond

	arrived int
	gen     int
	handle  uint64
	err     error
}

func newVMBarrier(size int) *vmBarrier {
	b := &vmBarrier{size: size}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// snapshotOnce blocks until all ranks of the VM arrive; the last arrival
// issues the snapshot request and the resulting checkpoint handle is
// returned to all.
func (b *vmBarrier) snapshotOnce(request func() (uint64, error)) (uint64, error) {
	b.mu.Lock()
	gen := b.gen
	b.arrived++
	if b.arrived == b.size {
		handle, err := func() (uint64, error) {
			b.mu.Unlock()
			defer b.mu.Lock()
			return request()
		}()
		b.handle, b.err = handle, err
		b.arrived = 0
		b.gen++
		b.mu.Unlock()
		b.cond.Broadcast()
		return handle, err
	}
	for b.gen == gen {
		b.cond.Wait()
	}
	handle, err := b.handle, b.err
	b.mu.Unlock()
	return handle, err
}

// InspectSnapshot mounts a disk snapshot from the repository read-only and
// returns its guest file system — the paper's scenario of downloading and
// inspecting checkpoint images as standalone entities.
func InspectSnapshot(ctx context.Context, cl *cloud.Cloud, ref cloud.SnapshotRef) (*guestfs.FS, error) {
	mod, err := mirror.Attach(ctx, cl.Client(), ref)
	if err != nil {
		return nil, err
	}
	return guestfs.Mount(mod)
}
