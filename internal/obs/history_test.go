package obs

import (
	"io"
	"net/http"
	"reflect"
	"strings"
	"testing"
	"time"
)

// TestHistoryWindowStats drives one ring through manual samples and checks
// each kind's windowed reduction: counter delta and rate, gauge
// first/last/min/max across samples, and histogram count/sum/quantiles
// restricted to the window's observations.
func TestHistoryWindowStats(t *testing.T) {
	reg := NewRegistry()
	h := reg.StartHistory(0, 8)
	c := reg.Counter("reqs_total")
	g := reg.Gauge("depth")
	hs := reg.Histogram("lat_ns")

	c.Add(5)
	g.Set(10)
	hs.Observe(100) // before the baseline: must not count in the window
	h.Sample()
	c.Add(7)
	g.Set(3)
	hs.Observe(1000)
	hs.Observe(1000)
	h.Sample()
	g.Set(20)
	h.Sample()

	rep := h.Window(time.Hour)
	if rep.Samples != 3 {
		t.Fatalf("Samples = %d, want 3", rep.Samples)
	}
	if rep.Span <= 0 {
		t.Errorf("Span = %v, want > 0", rep.Span)
	}
	cs := rep.Find("reqs_total")
	if cs == nil || cs.Kind != KindCounter {
		t.Fatalf("counter stat missing: %+v", cs)
	}
	if cs.Delta != 7 {
		t.Errorf("counter Delta = %d, want 7 (increase after the baseline)", cs.Delta)
	}
	if cs.Rate <= 0 {
		t.Errorf("counter Rate = %g, want > 0", cs.Rate)
	}
	gs := rep.Find("depth")
	if gs == nil || gs.Kind != KindGauge {
		t.Fatalf("gauge stat missing: %+v", gs)
	}
	if gs.First != 10 || gs.Last != 20 || gs.Min != 3 || gs.Max != 20 {
		t.Errorf("gauge first/last/min/max = %d/%d/%d/%d, want 10/20/3/20",
			gs.First, gs.Last, gs.Min, gs.Max)
	}
	hst := rep.Find("lat_ns")
	if hst == nil || hst.Kind != KindHistogram {
		t.Fatalf("histogram stat missing: %+v", hst)
	}
	if hst.Count != 2 || hst.Sum != 2000 {
		t.Errorf("histogram count/sum = %d/%d, want 2/2000 (baseline observation excluded)",
			hst.Count, hst.Sum)
	}
	if hst.Mean != 1000 {
		t.Errorf("histogram mean = %g, want 1000", hst.Mean)
	}
	// Both in-window observations (1000) land in the (512, 1023] bucket; the
	// interpolated quantiles must stay inside it.
	for _, q := range []float64{hst.P50, hst.P99} {
		if q <= 512 || q > 1023 {
			t.Errorf("quantile %g outside the (512, 1023] bucket of value 1000", q)
		}
	}
}

// TestHistoryRingWrapFoldsBaseline fills a ring past capacity: the evicted
// deltas must fold forward, so the oldest retained sample decodes to a
// complete baseline — including series that stopped changing long before the
// wrap (the delta encoding retains them only in folded state).
func TestHistoryRingWrapFoldsBaseline(t *testing.T) {
	reg := NewRegistry()
	h := reg.StartHistory(0, 4)
	c := reg.Counter("ticks_total")
	g := reg.Gauge("round")
	reg.Counter("static_total").Add(42) // never changes after the first sample

	for i := 1; i <= 10; i++ {
		c.Inc()
		g.Set(int64(i))
		h.Sample()
	}

	rep := h.Window(time.Hour)
	if rep.Samples != 4 {
		t.Fatalf("Samples = %d, want the ring capacity 4", rep.Samples)
	}
	cs := rep.Find("ticks_total")
	if cs == nil || cs.Delta != 3 {
		t.Fatalf("counter delta over the retained window = %+v, want Delta 3 (samples 7..10)", cs)
	}
	gs := rep.Find("round")
	if gs == nil || gs.First != 7 || gs.Last != 10 || gs.Min != 7 || gs.Max != 10 {
		t.Fatalf("gauge window = %+v, want first/last/min/max 7/10/7/10", gs)
	}
	// The static counter only ever appeared in the long-evicted first delta;
	// folding must have carried it into the retained baseline.
	st := rep.Find("static_total")
	if st == nil {
		t.Fatal("series that stopped changing was lost on ring wrap")
	}
	if st.Delta != 0 {
		t.Errorf("static counter Delta = %d, want 0", st.Delta)
	}
}

// TestMarshalParseWindowRoundTrip: ParseWindow is MarshalWindow's exact
// inverse, including label values needing quoting and negative gauges.
func TestMarshalParseWindowRoundTrip(t *testing.T) {
	rep := WindowReport{
		Window:  time.Minute,
		Span:    5500 * time.Millisecond,
		Samples: 12,
		Stats: []WindowStat{
			{Name: "a_total", Kind: KindCounter, Delta: 42, Rate: 7.636363636363637},
			{
				Name:   "b_total",
				Labels: []Label{L("node", "n-1"), L("verb", "chunk put")},
				Kind:   KindCounter, Delta: 3, Rate: 0.5454,
			},
			{
				Name:   "g",
				Labels: []Label{L("node", `quo"ted`)},
				Kind:   KindGauge, First: -3, Last: 9, Min: -7, Max: 11,
			},
			{
				Name: "h_ns", Kind: KindHistogram,
				Count: 100, Sum: 12345, Mean: 123.45, P50: 96.5, P99: 1020.25,
			},
		},
	}
	got, err := ParseWindow(MarshalWindow(rep))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, rep) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, rep)
	}
}

// TestParseWindowRejectsCorrupt: the strict parser refuses malformed and
// truncated frames outright instead of half-applying them.
func TestParseWindowRejectsCorrupt(t *testing.T) {
	const head = "window 60 span 5 samples 2\n"
	for _, tc := range []struct {
		name, frame string
	}{
		{"empty", ""},
		{"junk header", "junk\n"},
		{"negative window", "window -1 span 0 samples 0\n"},
		{"non-numeric samples", "window 60 span 5 samples x\n"},
		{"series without values", head + "counter foo\n"},
		{"unknown kind", head + "widget foo delta=1\n"},
		{"unknown key", head + "counter foo delta=1 rate=2 bogus=3\n"},
		{"missing key", head + "counter foo delta=1\n"},
		{"duplicate key", head + "counter foo delta=1 delta=2 rate=3\n"},
		{"bad value", head + "counter foo delta=abc rate=1\n"},
		{"kind mismatch values", head + "gauge g delta=1 rate=2\n"},
		{"unterminated labels", head + `gauge g{node="x first=1` + "\n"},
		{"truncated mid-line", head + "hist h_ns count=5 sum=10 mean=2 p50="},
	} {
		if _, err := ParseWindow([]byte(tc.frame)); err == nil {
			t.Errorf("%s: corrupt frame accepted", tc.name)
		}
	}
}

// TestImportFederation: Import files scraped points under the extra labels,
// maps histogram buckets onto the registry's own ring slots, skips points
// already carrying a federation label, and overwrites (counter regression
// shows the new value) rather than accumulating.
func TestImportFederation(t *testing.T) {
	src := NewRegistry()
	src.Counter("c_total").Add(9)
	src.Gauge("g").Set(-4)
	sh := src.Histogram("h_ns")
	sh.Observe(3)
	sh.Observe(300)
	sh.Observe(70000)

	dst := NewRegistry()
	dst.Import(src.Snapshot(), L("node", "n-0"))
	snap := dst.Snapshot()
	if p := Find(snap, "c_total", L("node", "n-0")); p == nil || p.Value != 9 {
		t.Errorf("counter not imported under node label: %+v", p)
	}
	if p := Find(snap, "g", L("node", "n-0")); p == nil || p.GaugeValue != -4 {
		t.Errorf("gauge not imported under node label: %+v", p)
	}
	hp := Find(snap, "h_ns", L("node", "n-0"))
	if hp == nil || hp.Count != 3 || hp.Sum != 70303 {
		t.Fatalf("histogram not imported: %+v", hp)
	}
	want := Find(src.Snapshot(), "h_ns")
	if !reflect.DeepEqual(hp.Buckets, want.Buckets) {
		t.Errorf("imported buckets %+v differ from source %+v", hp.Buckets, want.Buckets)
	}

	// Re-importing an already-federated snapshot must be a no-op: every point
	// carries node= already, so no node-labeled copies of node-labeled copies.
	before := len(dst.Snapshot())
	dst.Import(dst.Snapshot(), L("node", "n-9"))
	after := dst.Snapshot()
	if len(after) != before {
		t.Errorf("re-import minted %d new series", len(after)-before)
	}
	if p := Find(after, "c_total", L("node", "n-9")); p != nil {
		t.Errorf("already-labeled point re-filed under a second node: %+v", p)
	}

	// A restarted node scrapes lower: the value is replaced, not summed.
	dst.Import([]Point{{Name: "c_total", Kind: KindCounter, Value: 2}}, L("node", "n-0"))
	if p := Find(dst.Snapshot(), "c_total", L("node", "n-0")); p == nil || p.Value != 2 {
		t.Errorf("counter regression not overwritten: %+v", p)
	}
}

// TestTextReplyHistoryAndHealthVerbs covers the two verbs this plane added
// to the shared text endpoint: HISTORY serving MarshalWindow frames (with
// strict argument validation) and HEALTH serving the readiness verdict.
func TestTextReplyHistoryAndHealthVerbs(t *testing.T) {
	reg := NewRegistry()
	call := func(req string) string {
		resp, handled := reg.TextReply(strings.Fields(req))
		if !handled {
			t.Fatalf("%q not handled", req)
		}
		return string(resp)
	}

	if got := call("HISTORY"); got != "ERR no history ring" {
		t.Errorf("HISTORY without a ring: %q", got)
	}
	h := reg.StartHistory(0, 8)
	reg.Counter("c_total").Add(4)
	h.Sample()
	reg.Counter("c_total").Add(6)
	h.Sample()

	parseOK := func(resp string) WindowReport {
		t.Helper()
		body, ok := strings.CutPrefix(resp, "OK "+ExpositionVersion+"\n")
		if !ok {
			t.Fatalf("bad reply header: %q", resp)
		}
		rep, err := ParseWindow([]byte(body))
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	rep := parseOK(call("HISTORY"))
	if rep.Window != DefaultHistoryWindow {
		t.Errorf("bare HISTORY window = %v, want %v", rep.Window, DefaultHistoryWindow)
	}
	if st := rep.Find("c_total"); st == nil || st.Delta != 6 {
		t.Errorf("HISTORY reply delta = %+v, want 6", st)
	}
	if rep := parseOK(call("HISTORY 10")); rep.Window != 10*time.Second {
		t.Errorf("HISTORY 10 window = %v", rep.Window)
	}
	for _, bad := range []string{"HISTORY x", "HISTORY 0", "HISTORY -1", "HISTORY 1 2"} {
		if got := call(bad); !strings.HasPrefix(got, "ERR") {
			t.Errorf("%q accepted: %q", bad, got)
		}
	}

	if got := call("HEALTH"); got != "OK "+ExpositionVersion+"\nOK" {
		t.Errorf("HEALTH before any callback: %q", got)
	}
	reg.SetHealth(func() (bool, []string) { return false, []string{"a(n-1)", "b"} })
	if got := call("HEALTH"); got != "OK "+ExpositionVersion+"\nDEGRADED a(n-1) b" {
		t.Errorf("degraded HEALTH: %q", got)
	}
	if got := call("HEALTH now"); !strings.HasPrefix(got, "ERR") {
		t.Errorf("HEALTH with arguments accepted: %q", got)
	}
}

// TestHealthzEndpoint: the debug listener's /healthz flips from 200 to 503
// with the alert names when the registry's health callback degrades.
func TestHealthzEndpoint(t *testing.T) {
	reg := NewRegistry()
	srv, err := ServeDebug("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func() (int, string) {
		resp, err := http.Get("http://" + srv.Addr + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body)
	}
	if code, body := get(); code != http.StatusOK || body != "ok\n" {
		t.Errorf("healthy /healthz = %d %q", code, body)
	}
	reg.SetHealth(func() (bool, []string) { return false, []string{"backlog(n-2)"} })
	if code, body := get(); code != http.StatusServiceUnavailable || body != "degraded: backlog(n-2)\n" {
		t.Errorf("degraded /healthz = %d %q", code, body)
	}
}
