package obs

import (
	"bufio"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// History is a fixed-capacity overwrite-oldest ring of periodic registry
// snapshots, the time dimension the point-in-time METRICS scrape lacks.
// Entries are delta-encoded: each holds only the points that changed since
// the previous sample, so an idle registry costs near-nothing to retain.
// When the ring wraps, the evicted oldest entry is folded into its successor
// before being overwritten, so the oldest retained entry always decodes to a
// complete baseline state.
//
// Window answers the questions the health plane asks of a ring: counter
// rates over the last N seconds, histogram quantiles restricted to the
// window's observations, and gauge first/last/min/max. The HISTORY text verb
// (textverbs.go) and the blobseer opHistoryGet binary sibling both serve
// MarshalWindow of a Window call.
type History struct {
	reg  *Registry
	capN int

	mu      sync.Mutex
	entries []histEntry // ring storage, len == capN
	start   int         // index of the oldest entry
	count   int
	prev    map[string]Point // full state as of the newest entry

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

type histEntry struct {
	at  time.Time
	pts []Point // points changed since the previous retained entry
}

// DefaultHistoryWindow is the window a bare HISTORY request queries.
const DefaultHistoryWindow = time.Minute

// StartHistory attaches a history ring of capN samples to the registry and
// returns it. every > 0 starts a background sampler at that period; every ==
// 0 means manual sampling only — the owner calls History().Sample() at its
// own cadence (the supervisor samples once per federation round so windows
// align with scrape rounds). A registry has at most one ring: once attached,
// later calls return the existing ring unchanged.
func (r *Registry) StartHistory(every time.Duration, capN int) *History {
	if capN < 2 {
		capN = 256
	}
	h := &History{reg: r, capN: capN, entries: make([]histEntry, capN), prev: map[string]Point{}}
	if !r.hist.CompareAndSwap(nil, h) {
		return r.hist.Load()
	}
	if every > 0 {
		h.stop = make(chan struct{})
		h.done = make(chan struct{})
		go h.run(every)
	}
	return h
}

// History returns the registry's history ring, or nil if none was started.
func (r *Registry) History() *History { return r.hist.Load() }

// SetHealth installs the readiness callback behind the HEALTH verb and the
// /healthz debug endpoint: ok=false marks the process DEGRADED and firing
// lists the active alert names. Nil-callback registries always answer OK.
func (r *Registry) SetHealth(fn func() (ok bool, firing []string)) {
	r.health.Store(&fn)
}

// Health reports the registry's readiness (see SetHealth).
func (r *Registry) Health() (ok bool, firing []string) {
	fn := r.health.Load()
	if fn == nil || *fn == nil {
		return true, nil
	}
	return (*fn)()
}

func (h *History) run(every time.Duration) {
	defer close(h.done)
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			h.Sample()
		case <-h.stop:
			return
		}
	}
}

// Close stops the background sampler, if any. The ring stays queryable.
func (h *History) Close() {
	h.stopOnce.Do(func() {
		if h.stop != nil {
			close(h.stop)
			<-h.done
		}
	})
}

// Sample records one snapshot into the ring.
func (h *History) Sample() {
	snap := h.reg.Snapshot()
	now := time.Now()
	h.mu.Lock()
	defer h.mu.Unlock()
	var delta []Point
	cur := make(map[string]Point, len(snap))
	for _, p := range snap {
		k := key(p.Kind, p.Name, p.Labels)
		cur[k] = p
		if old, ok := h.prev[k]; !ok || !samePoint(old, p) {
			delta = append(delta, p)
		}
	}
	h.prev = cur
	e := histEntry{at: now, pts: delta}
	if h.count < h.capN {
		h.entries[(h.start+h.count)%h.capN] = e
		h.count++
		return
	}
	// Ring full: fold the evicted oldest entry into its successor so the
	// successor becomes a self-contained baseline, then reuse the slot.
	oldest := h.start
	succ := (oldest + 1) % h.capN
	h.entries[succ].pts = foldDelta(h.entries[oldest].pts, h.entries[succ].pts)
	h.entries[oldest] = e
	h.start = succ
}

// samePoint reports whether two snapshots of one series carry equal values.
func samePoint(a, b Point) bool {
	switch a.Kind {
	case KindCounter:
		return a.Value == b.Value
	case KindGauge:
		return a.GaugeValue == b.GaugeValue
	default:
		if a.Count != b.Count || a.Sum != b.Sum || len(a.Buckets) != len(b.Buckets) {
			return false
		}
		for i := range a.Buckets {
			if a.Buckets[i] != b.Buckets[i] {
				return false
			}
		}
		return true
	}
}

// foldDelta merges an evicted delta under its successor: points the newer
// delta does not override carry forward, so the fold preserves the decoded
// state at the successor's sample time.
func foldDelta(old, newer []Point) []Point {
	if len(old) == 0 {
		return newer
	}
	have := make(map[string]bool, len(newer))
	for _, p := range newer {
		have[key(p.Kind, p.Name, p.Labels)] = true
	}
	out := make([]Point, 0, len(old)+len(newer))
	for _, p := range old {
		if !have[key(p.Kind, p.Name, p.Labels)] {
			out = append(out, p)
		}
	}
	return append(out, newer...)
}

// WindowStat is one series' behavior over a queried window. Which fields are
// meaningful depends on Kind: counters report the increase and per-second
// rate, gauges the first/last values and the min/max across samples, and
// histograms the observations restricted to the window with their mean and
// quantiles.
type WindowStat struct {
	Name   string
	Labels []Label
	Kind   Kind

	Delta uint64  // counter: increase over the window
	Rate  float64 // counter: Delta per second

	First int64 // gauge: value at the window baseline
	Last  int64 // gauge: newest value
	Min   int64 // gauge: minimum across window samples
	Max   int64 // gauge: maximum across window samples

	Count uint64 // histogram: observations within the window
	Sum   uint64
	Mean  float64
	P50   float64
	P99   float64
}

// WindowReport is the result of a windowed history query.
type WindowReport struct {
	Window  time.Duration // requested window
	Span    time.Duration // actually covered (newest sample minus baseline)
	Samples int           // ring samples participating, baseline included
	Stats   []WindowStat
}

// Find returns the first stat with this name whose labels include all of
// want, or nil.
func (rep *WindowReport) Find(name string, want ...Label) *WindowStat {
	for i := range rep.Stats {
		st := &rep.Stats[i]
		if st.Name != name {
			continue
		}
		ok := true
		for _, l := range want {
			if statLabel(st, l.Key) != l.Value {
				ok = false
				break
			}
		}
		if ok {
			return st
		}
	}
	return nil
}

func statLabel(st *WindowStat, k string) string {
	for _, l := range st.Labels {
		if l.Key == k {
			return l.Value
		}
	}
	return ""
}

// Window reports every series' behavior over the trailing window. The
// baseline is the newest sample at or before the window start (or the oldest
// retained sample when the ring does not reach back that far); rates and
// deltas are computed against it over the actually covered span. A report
// with fewer than two samples carries zero rates.
func (h *History) Window(window time.Duration) WindowReport {
	if window <= 0 {
		window = DefaultHistoryWindow
	}
	rep := WindowReport{Window: window}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return rep
	}
	at := func(i int) *histEntry { return &h.entries[(h.start+i)%h.capN] }
	newest := at(h.count - 1).at
	cutoff := newest.Add(-window)
	bi := 0
	for i := 1; i < h.count; i++ {
		if at(i).at.After(cutoff) {
			break
		}
		bi = i
	}
	base := make(map[string]Point)
	for i := 0; i <= bi; i++ {
		for _, p := range at(i).pts {
			base[key(p.Kind, p.Name, p.Labels)] = p
		}
	}
	type gaugeTrack struct {
		first, min, max int64
	}
	state := make(map[string]Point, len(base))
	gauges := make(map[string]gaugeTrack)
	for k, p := range base {
		state[k] = p
		if p.Kind == KindGauge {
			gauges[k] = gaugeTrack{p.GaugeValue, p.GaugeValue, p.GaugeValue}
		}
	}
	for i := bi + 1; i < h.count; i++ {
		for _, p := range at(i).pts {
			k := key(p.Kind, p.Name, p.Labels)
			state[k] = p
			if p.Kind == KindGauge {
				g, ok := gauges[k]
				if !ok {
					g = gaugeTrack{p.GaugeValue, p.GaugeValue, p.GaugeValue}
				} else {
					g.min = min(g.min, p.GaugeValue)
					g.max = max(g.max, p.GaugeValue)
				}
				gauges[k] = g
			}
		}
	}
	rep.Span = newest.Sub(at(bi).at)
	rep.Samples = h.count - bi
	secs := rep.Span.Seconds()
	rep.Stats = make([]WindowStat, 0, len(state))
	for k, p := range state {
		st := WindowStat{Name: p.Name, Labels: p.Labels, Kind: p.Kind}
		b := base[k]
		switch p.Kind {
		case KindCounter:
			if p.Value > b.Value {
				st.Delta = p.Value - b.Value
			}
			if secs > 0 {
				st.Rate = float64(st.Delta) / secs
			}
		case KindGauge:
			g := gauges[k]
			st.First, st.Last, st.Min, st.Max = g.first, p.GaugeValue, g.min, g.max
		case KindHistogram:
			d := diffHist(b, p)
			st.Count, st.Sum = d.Count, d.Sum
			if d.Count > 0 {
				st.Mean = d.Mean()
				st.P50 = d.Quantile(0.50)
				st.P99 = d.Quantile(0.99)
			}
		}
		rep.Stats = append(rep.Stats, st)
	}
	sort.Slice(rep.Stats, func(i, j int) bool {
		a, b := &rep.Stats[i], &rep.Stats[j]
		if a.Name != b.Name {
			return a.Name < b.Name
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		return labelString(a.Labels) < labelString(b.Labels)
	})
	return rep
}

// diffHist subtracts the baseline histogram snapshot from the newer one,
// yielding a point whose count/sum/buckets cover only the window.
func diffHist(base, p Point) Point {
	d := Point{Name: p.Name, Labels: p.Labels, Kind: KindHistogram}
	if p.Count > base.Count {
		d.Count = p.Count - base.Count
	}
	if p.Sum > base.Sum {
		d.Sum = p.Sum - base.Sum
	}
	prior := make(map[uint64]uint64, len(base.Buckets))
	for _, b := range base.Buckets {
		prior[b.UpperBound] = b.Count
	}
	for _, b := range p.Buckets {
		if n := b.Count - prior[b.UpperBound]; n > 0 && b.Count > prior[b.UpperBound] {
			d.Buckets = append(d.Buckets, Bucket{UpperBound: b.UpperBound, Count: n})
		}
	}
	return d
}

// MarshalWindow renders a window report in the HISTORY wire format: one
// metadata line, then one line per series —
//
//	window <sec> span <sec> samples <n>
//	counter <name>{k="v",...} delta=<u> rate=<f>
//	gauge <name>{...} first=<i> last=<i> min=<i> max=<i>
//	hist <name>{...} count=<u> sum=<u> mean=<f> p50=<f> p99=<f>
//
// ParseWindow is its strict inverse.
func MarshalWindow(rep WindowReport) []byte {
	var b strings.Builder
	fmt.Fprintf(&b, "window %g span %g samples %d\n",
		rep.Window.Seconds(), rep.Span.Seconds(), rep.Samples)
	for i := range rep.Stats {
		st := &rep.Stats[i]
		series := st.Name
		if len(st.Labels) > 0 {
			series += "{" + labelString(st.Labels) + "}"
		}
		switch st.Kind {
		case KindCounter:
			fmt.Fprintf(&b, "counter %s delta=%d rate=%g\n", series, st.Delta, st.Rate)
		case KindGauge:
			fmt.Fprintf(&b, "gauge %s first=%d last=%d min=%d max=%d\n",
				series, st.First, st.Last, st.Min, st.Max)
		case KindHistogram:
			fmt.Fprintf(&b, "hist %s count=%d sum=%d mean=%g p50=%g p99=%g\n",
				series, st.Count, st.Sum, st.Mean, st.P50, st.P99)
		}
	}
	return []byte(b.String())
}

// ParseWindow parses MarshalWindow output. Unlike the tolerant ParseProm,
// this is strict: any malformed, truncated or unknown line is an error, so a
// corrupt HISTORY frame is rejected rather than silently half-applied.
func ParseWindow(b []byte) (WindowReport, error) {
	var rep WindowReport
	sc := bufio.NewScanner(strings.NewReader(string(b)))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	if !sc.Scan() {
		return rep, fmt.Errorf("obs: empty history frame")
	}
	head := strings.Fields(sc.Text())
	if len(head) != 6 || head[0] != "window" || head[2] != "span" || head[4] != "samples" {
		return rep, fmt.Errorf("obs: bad history header %q", sc.Text())
	}
	wsec, err1 := strconv.ParseFloat(head[1], 64)
	ssec, err2 := strconv.ParseFloat(head[3], 64)
	n, err3 := strconv.Atoi(head[5])
	if err1 != nil || err2 != nil || err3 != nil || wsec < 0 || ssec < 0 || n < 0 {
		return rep, fmt.Errorf("obs: bad history header %q", sc.Text())
	}
	rep.Window = time.Duration(wsec * float64(time.Second))
	rep.Span = time.Duration(ssec * float64(time.Second))
	rep.Samples = n
	for sc.Scan() {
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		kind, rest, ok := strings.Cut(line, " ")
		if !ok {
			return rep, fmt.Errorf("obs: bad history line %q", line)
		}
		name, labels, kvs, err := cutSeries(rest)
		if err != nil {
			return rep, fmt.Errorf("obs: bad history line %q: %w", line, err)
		}
		st := WindowStat{Name: name, Labels: labels}
		switch kind {
		case "counter":
			st.Kind = KindCounter
			err = parseKV(kvs, map[string]any{"delta": &st.Delta, "rate": &st.Rate})
		case "gauge":
			st.Kind = KindGauge
			err = parseKV(kvs, map[string]any{
				"first": &st.First, "last": &st.Last, "min": &st.Min, "max": &st.Max,
			})
		case "hist":
			st.Kind = KindHistogram
			err = parseKV(kvs, map[string]any{
				"count": &st.Count, "sum": &st.Sum,
				"mean": &st.Mean, "p50": &st.P50, "p99": &st.P99,
			})
		default:
			return rep, fmt.Errorf("obs: unknown history series kind %q", kind)
		}
		if err != nil {
			return rep, fmt.Errorf("obs: bad history line %q: %w", line, err)
		}
		rep.Stats = append(rep.Stats, st)
	}
	if err := sc.Err(); err != nil {
		return rep, err
	}
	return rep, nil
}

// cutSeries splits `name{k="v",...} k=v ...` into the series identity and
// the remaining key=value text, honoring quotes inside the label block.
func cutSeries(s string) (name string, labels []Label, rest string, err error) {
	brace := strings.IndexByte(s, '{')
	space := strings.IndexByte(s, ' ')
	if brace < 0 || (space >= 0 && space < brace) {
		if space < 0 {
			return "", nil, "", fmt.Errorf("missing values")
		}
		return s[:space], nil, s[space+1:], nil
	}
	name = s[:brace]
	inq := false
	for i := brace + 1; i < len(s); i++ {
		switch s[i] {
		case '\\':
			if inq {
				i++
			}
		case '"':
			inq = !inq
		case '}':
			if !inq {
				labels, err = parseLabels(s[brace+1 : i])
				if err != nil {
					return "", nil, "", err
				}
				rest = strings.TrimSpace(s[i+1:])
				if rest == "" {
					return "", nil, "", fmt.Errorf("missing values")
				}
				return name, labels, rest, nil
			}
		}
	}
	return "", nil, "", fmt.Errorf("unterminated labels")
}

// parseKV parses space-separated key=value pairs into the typed targets.
// Every expected key must appear exactly once; unknown keys are errors.
func parseKV(s string, want map[string]any) error {
	seen := make(map[string]bool, len(want))
	for _, f := range strings.Fields(s) {
		k, v, ok := strings.Cut(f, "=")
		if !ok {
			return fmt.Errorf("bad pair %q", f)
		}
		dst, known := want[k]
		if !known {
			return fmt.Errorf("unknown key %q", k)
		}
		if seen[k] {
			return fmt.Errorf("duplicate key %q", k)
		}
		seen[k] = true
		var err error
		switch dst := dst.(type) {
		case *uint64:
			*dst, err = strconv.ParseUint(v, 10, 64)
		case *int64:
			*dst, err = strconv.ParseInt(v, 10, 64)
		case *float64:
			*dst, err = strconv.ParseFloat(v, 64)
		}
		if err != nil {
			return fmt.Errorf("bad value %q for %q", v, k)
		}
	}
	if len(seen) != len(want) {
		return fmt.Errorf("want %d values, got %d", len(want), len(seen))
	}
	return nil
}
