package obs

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestStartSpanThreadsSpanContext: under an active trace, each StartSpan
// parents under the context's span and re-arms the context with its own id,
// so nested spans chain correctly; without a trace the context is unchanged.
func TestStartSpanThreadsSpanContext(t *testing.T) {
	reg := NewRegistry()
	ctx := WithRegistry(context.Background(), reg)
	ctx, trace := BeginTrace(ctx)
	ctx, root := StartSpan(ctx, "root")
	cctx, child := StartSpan(ctx, "child")
	_, grand := StartSpan(cctx, "grandchild")
	grand.End()
	child.End()
	root.End()

	spans := reg.TraceSpans(trace)
	if len(spans) != 3 {
		t.Fatalf("trace store holds %d spans, want 3", len(spans))
	}
	byName := map[string]SpanRecord{}
	for _, s := range spans {
		byName[s.Name] = s
	}
	if byName["root"].Parent != 0 {
		t.Errorf("root has parent %x, want none", byName["root"].Parent)
	}
	if byName["child"].Parent != byName["root"].ID {
		t.Errorf("child parent %x, want root %x", byName["child"].Parent, byName["root"].ID)
	}
	if byName["grandchild"].Parent != byName["child"].ID {
		t.Errorf("grandchild parent %x, want child %x", byName["grandchild"].Parent, byName["child"].ID)
	}

	// No trace: the span records only to the flight ring, not the store.
	plain := NewRegistry()
	pctx, sp := StartSpan(WithRegistry(context.Background(), plain), "solo")
	if _, ok := SpanContextFrom(pctx); ok {
		t.Error("StartSpan invented a span context without a trace")
	}
	sp.End()
	if got := len(plain.FlightSpans()); got != 1 {
		t.Errorf("flight ring holds %d spans, want 1", got)
	}
}

// TestHandlerContextDetachesFlatTrace: server-side contexts keep the
// distributed span context but drop the in-process caller's flat *Trace, so
// handler spans reach the caller only via the TRACE store — identical
// behaviour in-process and over TCP.
func TestHandlerContextDetachesFlatTrace(t *testing.T) {
	reg := NewRegistry()
	tr := NewTrace()
	ctx := WithTrace(context.Background(), tr)
	ctx, _ = BeginTrace(ctx)
	hctx := HandlerContext(ctx, reg)
	if TraceFrom(hctx) != nil {
		t.Error("handler context still carries the caller's flat trace")
	}
	if _, ok := SpanContextFrom(hctx); !ok {
		t.Error("handler context lost the distributed span context")
	}
	if RegistryFrom(hctx) != reg {
		t.Error("handler context not bound to the handler registry")
	}
	_, sp := StartSpan(hctx, "handler/x")
	sp.End()
	if len(tr.Spans()) != 0 {
		t.Error("handler span leaked into the caller's flat trace")
	}
}

// TestTraceStoreBounds: the per-trace store caps spans per trace and evicts
// whole traces FIFO past the store cap — memory bounds, not correctness.
func TestTraceStoreBounds(t *testing.T) {
	reg := NewRegistry()
	over := 7
	for i := 0; i < TraceSpanCap+over; i++ {
		reg.recordSpan(SpanRecord{Trace: 1, ID: uint64(i + 1), Name: "s"})
	}
	if got := len(reg.TraceSpans(1)); got != TraceSpanCap {
		t.Errorf("trace holds %d spans, want cap %d", got, TraceSpanCap)
	}
	for i := 0; i < TraceStoreCap; i++ {
		reg.recordSpan(SpanRecord{Trace: uint64(100 + i), ID: uint64(i + 1), Name: "s"})
	}
	if got := len(reg.TraceSpans(1)); got != 0 {
		t.Errorf("oldest trace not evicted: still holds %d spans", got)
	}
	if got := len(reg.TraceSpans(100 + TraceStoreCap - 1)); got != 1 {
		t.Errorf("newest trace missing: %d spans", got)
	}
}

// TestFlightRingOverwritesOldest: the recorder retains exactly FlightCap
// spans and FlightSpans returns them oldest first.
func TestFlightRingOverwritesOldest(t *testing.T) {
	reg := NewRegistry()
	total := FlightCap + 10
	for i := 0; i < total; i++ {
		reg.recordSpan(SpanRecord{ID: uint64(i + 1), Name: fmt.Sprintf("s%d", i)})
	}
	got := reg.FlightSpans()
	if len(got) != FlightCap {
		t.Fatalf("ring holds %d spans, want %d", len(got), FlightCap)
	}
	if got[0].ID != uint64(total-FlightCap+1) {
		t.Errorf("oldest retained span id %d, want %d", got[0].ID, total-FlightCap+1)
	}
	if got[len(got)-1].ID != uint64(total) {
		t.Errorf("newest span id %d, want %d", got[len(got)-1].ID, total)
	}
}

// TestMarshalParseSpansRoundTrip: the TRACE/FLIGHT line format survives a
// round trip, including names needing quoting, and malformed lines fail
// loudly instead of dropping spans.
func TestMarshalParseSpansRoundTrip(t *testing.T) {
	now := time.Now().Truncate(time.Nanosecond)
	in := []SpanRecord{
		{Trace: 0xdead, ID: 1, Parent: 0, Name: "root", Start: now, End: now.Add(time.Millisecond)},
		{Trace: 0xdead, ID: 2, Parent: 1, Name: `odd "name" with spaces`, Start: now, End: now.Add(2 * time.Millisecond)},
		{ID: 3, Name: "traceless", Start: now, End: now},
	}
	out, err := ParseSpans(MarshalSpans(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("round trip returned %d spans, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i].Trace != in[i].Trace || out[i].ID != in[i].ID || out[i].Parent != in[i].Parent ||
			out[i].Name != in[i].Name || !out[i].Start.Equal(in[i].Start) || !out[i].End.Equal(in[i].End) {
			t.Errorf("span %d mangled: %+v != %+v", i, out[i], in[i])
		}
	}
	for _, bad := range []string{
		"span deadbeef",
		"nospan 1 2 3 4 5 \"x\"",
		"span zz 2 3 4 5 \"x\"",
		"span 1 2 3 4 5 unquoted",
	} {
		if _, err := ParseSpans([]byte(bad)); err == nil {
			t.Errorf("malformed line %q parsed without error", bad)
		}
	}
}

// TestAssembleTraceAnchorsRemoteClocks: a remote subtree whose wall clock is
// skewed far outside its parent RPC's window is shifted inside it; same-clock
// children are left exact.
func TestAssembleTraceAnchorsRemoteClocks(t *testing.T) {
	base := time.Unix(1000, 0)
	const trace = 0x77
	local := []SpanRecord{
		{Trace: trace, ID: 1, Name: "root", Start: base, End: base.Add(100 * time.Millisecond)},
		{Trace: trace, ID: 2, Parent: 1, Name: "rpc/x", Start: base.Add(10 * time.Millisecond), End: base.Add(50 * time.Millisecond)},
	}
	// The remote clock runs an hour ahead; the handler span must land inside
	// the rpc window after assembly.
	skew := time.Hour
	remote := []SpanRecord{
		{Trace: trace, ID: 3, Parent: 2, Name: "handler/x",
			Start: base.Add(skew), End: base.Add(skew + 20*time.Millisecond)},
	}
	at := AssembleTrace(trace, map[string][]SpanRecord{"client": local, "server": remote})
	if at.Root == nil || at.Root.Name != "root" {
		t.Fatalf("root not found: %+v", at)
	}
	if at.Spans != 3 {
		t.Fatalf("assembled %d spans, want 3", at.Spans)
	}
	rpc := at.Root.Children[0]
	if rpc.Name != "rpc/x" || len(rpc.Children) != 1 {
		t.Fatalf("rpc span misassembled: %+v", rpc)
	}
	h := rpc.Children[0]
	if h.Start.Before(rpc.Start) || h.End.After(rpc.End) {
		t.Errorf("remote handler span [%v, %v] not anchored inside rpc window [%v, %v]",
			h.Start, h.End, rpc.Start, rpc.End)
	}
	if got := rpc.Start.Sub(at.Root.Start); got != 10*time.Millisecond {
		t.Errorf("same-clock child shifted: rpc offset %v, want 10ms", got)
	}
}

// TestCriticalPathTilesRootWindow: the segments are contiguous, chronological
// and sum exactly to the root's duration; the attributed share excludes only
// the root's own uncovered gaps.
func TestCriticalPathTilesRootWindow(t *testing.T) {
	base := time.Unix(2000, 0)
	const trace = 0x88
	ms := func(d int) time.Time { return base.Add(time.Duration(d) * time.Millisecond) }
	spans := []SpanRecord{
		{Trace: trace, ID: 1, Name: "root", Start: ms(0), End: ms(100)},
		// Two concurrent provider streams: the slower one gates completion.
		{Trace: trace, ID: 2, Parent: 1, Name: "fast", Start: ms(10), End: ms(40)},
		{Trace: trace, ID: 3, Parent: 1, Name: "slow", Start: ms(10), End: ms(90)},
	}
	at := AssembleTrace(trace, map[string][]SpanRecord{"p": spans})
	segs := CriticalPath(at.Root)
	if len(segs) == 0 {
		t.Fatal("no critical path")
	}
	var total time.Duration
	for i, s := range segs {
		total += s.Duration()
		if i > 0 && !s.Start.Equal(segs[i-1].End) {
			t.Errorf("segments not contiguous at %d: %v != %v", i, s.Start, segs[i-1].End)
		}
	}
	if wall := at.Root.End.Sub(at.Root.Start); total != wall {
		t.Errorf("critical path sums to %v, want wall %v", total, wall)
	}
	// The slow stream is on the path; the fast one never is.
	for _, s := range segs {
		if s.Node.Name == "fast" {
			t.Error("non-gating concurrent span on the critical path")
		}
	}
	// Attribution: root owns [0,10) and [90,100]; the slow child the rest.
	if got := PathAttributed(at.Root, segs); got != 80*time.Millisecond {
		t.Errorf("attributed %v, want 80ms", got)
	}
}

// TestConcurrentTraceCollection races span recording against TRACE and
// FLIGHT collection on one registry — the -race regression for the span
// stores (a collector scraping a live process must never tear state).
func TestConcurrentTraceCollection(t *testing.T) {
	reg := NewRegistry()
	ctx := WithRegistry(context.Background(), reg)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				tctx, trace := BeginTrace(ctx)
				tctx, root := StartSpan(tctx, fmt.Sprintf("w%d/root", w))
				_, child := StartSpan(tctx, "child")
				child.End()
				root.End()
				_ = trace
				if i%8 == 0 {
					sp := StartSpanIn(reg, "traceless")
					sp.End()
				}
			}
		}(w)
	}
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if spans := reg.FlightSpans(); len(spans) > FlightCap {
					t.Errorf("flight ring over cap: %d", len(spans))
					return
				}
				if _, err := ParseSpans(MarshalSpans(reg.TraceSpans(uint64(i)))); err != nil {
					t.Errorf("collected spans unparseable: %v", err)
					return
				}
				if resp, handled := reg.TextReply([]string{"FLIGHT"}); !handled || !strings.HasPrefix(string(resp), "OK ") {
					t.Error("FLIGHT reply malformed under concurrency")
					return
				}
			}
		}()
	}
	time.Sleep(100 * time.Millisecond)
	close(stop)
	wg.Wait()
}

// TestTextReplyVerbs drives the shared introspection verbs through their
// table of shapes: chunked metrics, trace lookup, bare flight, and the
// malformed requests every endpoint must reject identically.
func TestTextReplyVerbs(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("x_total").Inc()
	ctx := WithRegistry(context.Background(), reg)
	tctx, trace := BeginTrace(ctx)
	_, sp := StartSpan(tctx, "op")
	sp.End()

	for _, tc := range []struct {
		req     string
		handled bool
		prefix  string
	}{
		{"METRICS", true, "OK v1\n"},
		{"METRICS 0", true, "OK v1\n"},
		{"METRICS -1", true, "ERR bad metrics offset"},
		{"METRICS x", true, "ERR bad metrics offset"},
		{"METRICS 0 0", true, "ERR malformed metrics request"},
		{fmt.Sprintf("TRACE %x", trace), true, "OK v1\nspan "},
		{"TRACE", true, "ERR malformed trace request"},
		{"TRACE zz", true, "ERR bad trace id"},
		{"TRACE 0", true, "ERR bad trace id"},
		{"FLIGHT", true, "OK v1\nspan "},
		{"FLIGHT node-001", false, ""}, // endpoint-specific (supervisor)
		{"STATUS", false, ""},
		{"", false, ""},
	} {
		resp, handled := reg.TextReply(strings.Fields(tc.req))
		if handled != tc.handled {
			t.Errorf("TextReply(%q) handled=%v, want %v", tc.req, handled, tc.handled)
			continue
		}
		if handled && !strings.HasPrefix(string(resp), tc.prefix) {
			t.Errorf("TextReply(%q) = %q, want prefix %q", tc.req, resp, tc.prefix)
		}
	}
}
