package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// ExpositionVersion marks the snapshot wire format. The METRICS verb and
// the /metrics HTTP handler both emit it as the first line so scrapers can
// detect incompatible changes.
const ExpositionVersion = "v1"

// versionComment is the first line of every exposition.
const versionComment = "# blobcr-metrics " + ExpositionVersion

// WriteProm renders points in Prometheus text exposition format, preceded
// by the version comment. Histograms emit cumulative le buckets (only
// boundaries with observations, plus +Inf), _sum and _count.
func WriteProm(w io.Writer, points []Point) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, versionComment)
	lastName, lastKind := "", Kind(255)
	for i := range points {
		p := &points[i]
		// The registry allows the same name under different kinds; TYPE is
		// keyed on (name, kind) so the second kind never inherits the first
		// kind's TYPE line (ParseProm applies the latest TYPE seen).
		if p.Name != lastName || p.Kind != lastKind {
			fmt.Fprintf(bw, "# TYPE %s %s\n", p.Name, p.Kind)
			lastName, lastKind = p.Name, p.Kind
		}
		switch p.Kind {
		case KindCounter:
			fmt.Fprintf(bw, "%s%s %d\n", p.Name, promLabels(p.Labels, "", 0), p.Value)
		case KindGauge:
			fmt.Fprintf(bw, "%s%s %d\n", p.Name, promLabels(p.Labels, "", 0), p.GaugeValue)
		case KindHistogram:
			var cum uint64
			for _, b := range p.Buckets {
				cum += b.Count
				fmt.Fprintf(bw, "%s_bucket%s %d\n", p.Name, promLabels(p.Labels, "le", b.UpperBound), cum)
			}
			// Snapshot reads count and buckets non-atomically, so under
			// concurrent Observe calls cum can exceed the sampled count;
			// clamp so the exposition stays monotonic (+Inf >= every le).
			total := p.Count
			if cum > total {
				total = cum
			}
			fmt.Fprintf(bw, "%s_bucket%s %d\n", p.Name, promLabelsInf(p.Labels), total)
			fmt.Fprintf(bw, "%s_sum%s %d\n", p.Name, promLabels(p.Labels, "", 0), p.Sum)
			fmt.Fprintf(bw, "%s_count%s %d\n", p.Name, promLabels(p.Labels, "", 0), total)
		}
	}
	return bw.Flush()
}

// PromText renders a registry snapshot to a string.
func (r *Registry) PromText() string {
	var b strings.Builder
	WriteProm(&b, r.Snapshot())
	return b.String()
}

// ExpositionChunkBytes caps one METRICS reply body. High label cardinality
// (per-address latency histograms × providers) can push a full exposition
// past the 4 MiB frame budget the batched data path also works to, so
// METRICS speakers serve the exposition in chunks of at most this many
// bytes and scrapers follow the continuation offset.
const ExpositionChunkBytes = 3 << 20

// ExpositionAt renders the registry's exposition and returns the chunk
// starting at byte offset off plus the offset of the next chunk, or -1 when
// this chunk completes the exposition. The text is re-rendered per call, so
// a multi-chunk scrape can tear across concurrent updates — the same
// consistency a sequence of independent scrapes has.
func (r *Registry) ExpositionAt(off int) (string, int) {
	text := r.PromText()
	if off < 0 || off > len(text) {
		off = len(text)
	}
	if end := off + ExpositionChunkBytes; end < len(text) {
		return text[off:end], end
	}
	return text[off:], -1
}

func promLabels(labels []Label, extraKey string, extraVal uint64) string {
	if len(labels) == 0 && extraKey == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Key, l.Value)
	}
	if extraKey != "" {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=\"%d\"", extraKey, extraVal)
	}
	b.WriteByte('}')
	return b.String()
}

func promLabelsInf(labels []Label) string {
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Key, l.Value)
	}
	if len(labels) > 0 {
		b.WriteByte(',')
	}
	b.WriteString(`le="+Inf"}`)
	return b.String()
}

// ParseProm parses text produced by WriteProm back into points, so
// blobcr-ctl and the benches can render remote snapshots without any
// dependency. It tolerates unknown lines and reconstructs histograms from
// their cumulative buckets.
func ParseProm(text string) ([]Point, error) {
	kinds := make(map[string]Kind)
	type histKey struct {
		name   string
		labels string
	}
	hists := make(map[histKey]*Point)
	var order []*Point

	sc := bufio.NewScanner(strings.NewReader(text))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) == 4 && fields[1] == "TYPE" {
				switch fields[3] {
				case "counter":
					kinds[fields[2]] = KindCounter
				case "gauge":
					kinds[fields[2]] = KindGauge
				case "histogram":
					kinds[fields[2]] = KindHistogram
				}
			}
			continue
		}
		name, labels, raw, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("obs: parse %q: %w", line, err)
		}
		base, suffix := name, ""
		for _, s := range []string{"_bucket", "_sum", "_count"} {
			trimmed := strings.TrimSuffix(name, s)
			if trimmed != name {
				if k, ok := kinds[trimmed]; ok && k == KindHistogram {
					base, suffix = trimmed, s
				}
				break
			}
		}
		kind, known := kinds[base]
		if !known {
			continue
		}
		switch kind {
		case KindCounter, KindGauge:
			p := &Point{Name: base, Labels: labels, Kind: kind}
			if kind == KindCounter {
				p.Value, err = parseUintValue(raw)
			} else {
				p.GaugeValue, err = parseIntValue(raw)
			}
			if err != nil {
				return nil, fmt.Errorf("obs: parse %q: %w", line, err)
			}
			order = append(order, p)
		case KindHistogram:
			value, err := parseUintValue(raw)
			if err != nil {
				return nil, fmt.Errorf("obs: parse %q: %w", line, err)
			}
			le := ""
			var kept []Label
			for _, l := range labels {
				if l.Key == "le" {
					le = l.Value
					continue
				}
				kept = append(kept, l)
			}
			hk := histKey{name: base, labels: labelString(kept)}
			p := hists[hk]
			if p == nil {
				p = &Point{Name: base, Labels: kept, Kind: KindHistogram}
				hists[hk] = p
				order = append(order, p)
			}
			switch suffix {
			case "_sum":
				p.Sum = value
			case "_count":
				p.Count = value
			case "_bucket":
				if le == "+Inf" {
					continue
				}
				bound, err := strconv.ParseUint(le, 10, 64)
				if err != nil {
					return nil, fmt.Errorf("obs: bad le %q", le)
				}
				p.Buckets = append(p.Buckets, Bucket{UpperBound: bound, Count: value})
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	// Buckets arrived cumulative; convert back to per-bucket counts.
	for _, p := range order {
		if p.Kind != KindHistogram {
			continue
		}
		sort.Slice(p.Buckets, func(i, j int) bool { return p.Buckets[i].UpperBound < p.Buckets[j].UpperBound })
		var prev uint64
		for i := range p.Buckets {
			cum := p.Buckets[i].Count
			p.Buckets[i].Count = cum - prev
			prev = cum
		}
	}
	out := make([]Point, len(order))
	for i, p := range order {
		out[i] = *p
	}
	return out, nil
}

// parseSample splits `name{k="v",...} value` into its parts. The value is
// returned as raw text so callers can parse it at full integer precision;
// a float64 round-trip here would corrupt counters above 2^53.
func parseSample(line string) (name string, labels []Label, value string, err error) {
	rest := line
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		name = rest[:i]
		end := strings.LastIndexByte(rest, '}')
		if end < i {
			return "", nil, "", fmt.Errorf("unterminated labels")
		}
		labels, err = parseLabels(rest[i+1 : end])
		if err != nil {
			return "", nil, "", err
		}
		rest = strings.TrimSpace(rest[end+1:])
	} else {
		fields := strings.Fields(rest)
		if len(fields) != 2 {
			return "", nil, "", fmt.Errorf("want 2 fields, got %d", len(fields))
		}
		name, rest = fields[0], fields[1]
	}
	if rest == "" || strings.ContainsAny(rest, " \t") {
		return "", nil, "", fmt.Errorf("bad value %q", rest)
	}
	return name, labels, rest, nil
}

// parseUintValue parses an unsigned sample value, preferring exact integer
// parsing and falling back to float only for non-integer renderings.
func parseUintValue(s string) (uint64, error) {
	if v, err := strconv.ParseUint(s, 10, 64); err == nil {
		return v, nil
	}
	f, err := strconv.ParseFloat(s, 64)
	if err != nil || math.IsNaN(f) || f < 0 {
		return 0, fmt.Errorf("bad value %q", s)
	}
	return uint64(f), nil
}

// parseIntValue parses a signed sample value, preferring exact integer
// parsing and falling back to float only for non-integer renderings.
func parseIntValue(s string) (int64, error) {
	if v, err := strconv.ParseInt(s, 10, 64); err == nil {
		return v, nil
	}
	f, err := strconv.ParseFloat(s, 64)
	if err != nil || math.IsNaN(f) {
		return 0, fmt.Errorf("bad value %q", s)
	}
	return int64(f), nil
}

func parseLabels(s string) ([]Label, error) {
	var labels []Label
	for s != "" {
		eq := strings.IndexByte(s, '=')
		if eq < 0 {
			return nil, fmt.Errorf("bad label pair %q", s)
		}
		k := strings.TrimSpace(s[:eq])
		s = s[eq+1:]
		if len(s) == 0 || s[0] != '"' {
			return nil, fmt.Errorf("unquoted label value")
		}
		v, rest, err := unquotePrefix(s)
		if err != nil {
			return nil, err
		}
		labels = append(labels, Label{Key: k, Value: v})
		s = strings.TrimPrefix(strings.TrimSpace(rest), ",")
	}
	return labels, nil
}

// unquotePrefix consumes a leading Go-quoted string and returns it decoded
// plus the remainder.
func unquotePrefix(s string) (string, string, error) {
	for i := 1; i < len(s); i++ {
		if s[i] == '\\' {
			i++
			continue
		}
		if s[i] == '"' {
			v, err := strconv.Unquote(s[:i+1])
			if err != nil {
				return "", "", err
			}
			return v, s[i+1:], nil
		}
	}
	return "", "", fmt.Errorf("unterminated quote")
}

// Find returns the first point with this name whose labels include all of
// want, or nil.
func Find(points []Point, name string, want ...Label) *Point {
	for i := range points {
		p := &points[i]
		if p.Name != name {
			continue
		}
		ok := true
		for _, l := range want {
			if p.Label(l.Key) != l.Value {
				ok = false
				break
			}
		}
		if ok {
			return p
		}
	}
	return nil
}
