// Cross-process trace assembly and critical-path analysis. A client
// collects one trace's spans from every process that took part (its own
// registry plus each endpoint's TRACE reply), hands the per-process sets to
// AssembleTrace, and gets back one tree; CriticalPath then walks the tree
// backward from the root's end to explain where the wall time went through
// the concurrent per-provider streams.

package obs

import (
	"sort"
	"time"
)

// SpanNode is one span in an assembled trace tree. Its embedded record's
// Start/End have been re-anchored onto the root process's clock when the
// span came from another process (see AssembleTrace). Children are sorted
// by start time.
type SpanNode struct {
	SpanRecord
	Process  string // which per-process set the span came from
	Children []*SpanNode
}

// AssembledTrace is one cross-process trace tree.
type AssembledTrace struct {
	Trace   uint64
	Root    *SpanNode
	Orphans []*SpanNode // parentless or parent-missing spans besides the root
	Spans   int         // nodes reachable from Root
}

// AssembleTrace builds the span tree for one trace from per-process span
// sets (keyed by a caller-chosen process label; duplicates across sets are
// collapsed by span ID). The root is the parentless span that starts
// earliest. Monotonic clocks do not compare across processes, so a remote
// subtree whose wall-clock window falls outside its parent RPC span's
// window is shifted to sit centered inside it — the per-RPC request/response
// timestamps are the only cross-process anchor there is. Same-clock children
// (in-process deployments) already nest and are left exact.
func AssembleTrace(trace uint64, sets map[string][]SpanRecord) *AssembledTrace {
	at := &AssembledTrace{Trace: trace}
	nodes := make(map[uint64]*SpanNode)
	var order []string
	for p := range sets {
		order = append(order, p)
	}
	sort.Strings(order)
	for _, p := range order {
		for _, rec := range sets[p] {
			if rec.Trace != trace || rec.ID == 0 {
				continue
			}
			if _, dup := nodes[rec.ID]; dup {
				continue
			}
			nodes[rec.ID] = &SpanNode{SpanRecord: rec, Process: p}
		}
	}
	var roots []*SpanNode
	for _, n := range nodes {
		if p := nodes[n.Parent]; n.Parent != 0 && p != nil && p != n {
			p.Children = append(p.Children, n)
		} else {
			roots = append(roots, n)
		}
	}
	for _, n := range nodes {
		sort.Slice(n.Children, func(i, j int) bool { return n.Children[i].Start.Before(n.Children[j].Start) })
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i].Start.Before(roots[j].Start) })
	if len(roots) == 0 {
		return at
	}
	at.Root, at.Orphans = roots[0], roots[1:]
	anchor(at.Root, 0)
	at.Spans = countNodes(at.Root)
	return at
}

// anchor applies shift to n and pushes it down the tree, adding an extra
// re-centering shift at each process-boundary edge whose child window does
// not already sit inside the parent's.
func anchor(n *SpanNode, shift time.Duration) {
	n.Start, n.End = n.Start.Add(shift), n.End.Add(shift)
	for _, c := range n.Children {
		cshift := shift
		if c.Process != n.Process {
			s, e := c.Start.Add(cshift), c.End.Add(cshift)
			if s.Before(n.Start) || e.After(n.End) {
				target := n.Start
				if cdur, pdur := e.Sub(s), n.End.Sub(n.Start); cdur < pdur {
					target = n.Start.Add((pdur - cdur) / 2)
				}
				cshift += target.Sub(s)
			}
		}
		anchor(c, cshift)
	}
}

func countNodes(n *SpanNode) int {
	total := 1
	for _, c := range n.Children {
		total += countNodes(c)
	}
	return total
}

// PathSegment is one contiguous interval of the critical path, attributed
// to the deepest span that was the reason the trace had not finished yet.
type PathSegment struct {
	Node       *SpanNode
	Start, End time.Time
}

// Duration returns the segment's length.
func (s PathSegment) Duration() time.Duration { return s.End.Sub(s.Start) }

// CriticalPath walks the assembled tree backward from the root's end: at
// each instant the path sits in the latest-finishing span active then,
// descending into children where one covers the cursor and charging the
// parent's own span for gaps no child covers. The returned segments are
// contiguous, chronological, and tile exactly the root's [Start, End]
// window — concurrent provider streams contribute only the one that gated
// completion at each instant, which is what makes the sum comparable to the
// measured wall time.
func CriticalPath(root *SpanNode) []PathSegment {
	if root == nil {
		return nil
	}
	var segs []PathSegment
	pathWalk(root, root.End, &segs)
	// The backward walk emits segments latest-first.
	for i, j := 0, len(segs)-1; i < j; i, j = i+1, j-1 {
		segs[i], segs[j] = segs[j], segs[i]
	}
	return segs
}

// pathWalk attributes the interval (n.Start, t] within n, recursing into
// the children on the critical path.
func pathWalk(n *SpanNode, t time.Time, segs *[]PathSegment) {
	for t.After(n.Start) {
		// The latest-finishing child active strictly before t.
		var best *SpanNode
		var bestEnd time.Time
		for _, c := range n.Children {
			if !c.Start.Before(t) || !c.End.After(n.Start) {
				continue
			}
			e := c.End
			if e.After(t) {
				e = t // child outlived the cursor (overlap noise): clamp
			}
			if best == nil || e.After(bestEnd) {
				best, bestEnd = c, e
			}
		}
		if best == nil {
			*segs = append(*segs, PathSegment{Node: n, Start: n.Start, End: t})
			return
		}
		if bestEnd.Before(t) {
			*segs = append(*segs, PathSegment{Node: n, Start: bestEnd, End: t})
		}
		pathWalk(best, bestEnd, segs)
		t = best.Start
	}
}

// PathAttributed sums the critical-path time attributed to spans other than
// root itself: the part of the wall time the instrumentation explains. The
// remainder is the root's own uninstrumented gaps.
func PathAttributed(root *SpanNode, segs []PathSegment) time.Duration {
	var attributed time.Duration
	for _, s := range segs {
		if s.Node != root {
			attributed += s.Duration()
		}
	}
	return attributed
}
