package obs

import (
	"context"
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestHistogramBucketBoundaries table-tests the log2 bucket mapping at and
// around every power-of-two boundary.
func TestHistogramBucketBoundaries(t *testing.T) {
	cases := []struct {
		value uint64
		bound uint64 // inclusive upper bound of the bucket it must land in
	}{
		{0, 0},
		{1, 1},
		{2, 3},
		{3, 3},
		{4, 7},
		{7, 7},
		{8, 15},
		{1023, 1023},
		{1024, 2047},
		{1025, 2047},
		{1<<32 - 1, 1<<32 - 1},
		{1 << 32, 1<<33 - 1},
		{1<<63 - 1, 1<<63 - 1},
		{1 << 63, math.MaxUint64},
		{math.MaxUint64, math.MaxUint64},
	}
	for _, tc := range cases {
		var h Histogram
		h.Observe(tc.value)
		var got []Bucket
		for i := range h.buckets {
			if n := h.buckets[i].Load(); n > 0 {
				got = append(got, Bucket{UpperBound: BucketBound(i), Count: n})
			}
		}
		if len(got) != 1 {
			t.Fatalf("Observe(%d): %d buckets populated, want 1", tc.value, len(got))
		}
		if got[0].UpperBound != tc.bound {
			t.Errorf("Observe(%d): landed in bucket le=%d, want le=%d", tc.value, got[0].UpperBound, tc.bound)
		}
		if h.Sum() != tc.value || h.Count() != 1 {
			t.Errorf("Observe(%d): sum=%d count=%d", tc.value, h.Sum(), h.Count())
		}
		// The bucket's lower edge must not exceed the value.
		if tc.value > 0 && tc.bound/2+1 > tc.value {
			t.Errorf("Observe(%d): bucket [%d..%d] excludes value", tc.value, tc.bound/2+1, tc.bound)
		}
	}
}

// TestBucketBound checks the exported boundary function directly.
func TestBucketBound(t *testing.T) {
	if BucketBound(0) != 0 || BucketBound(-1) != 0 {
		t.Fatal("bucket 0 bound")
	}
	for i := 1; i < 64; i++ {
		want := uint64(1)<<uint(i) - 1
		if BucketBound(i) != want {
			t.Fatalf("BucketBound(%d) = %d, want %d", i, BucketBound(i), want)
		}
	}
	if BucketBound(64) != math.MaxUint64 || BucketBound(65) != math.MaxUint64 {
		t.Fatal("top bucket bound")
	}
}

// TestConcurrentUpdatesVsSnapshot is the -race stress: hammer counters,
// gauges and histograms from many goroutines while snapshots run, then
// check totals.
func TestConcurrentUpdatesVsSnapshot(t *testing.T) {
	reg := NewRegistry()
	const workers = 8
	const perWorker = 5000
	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Concurrent snapshotters + prom renderers.
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					reg.Snapshot()
					reg.PromText()
				}
			}
		}()
	}

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lbl := L("worker", fmt.Sprintf("%d", w%2)) // contend on shared handles
			for i := 0; i < perWorker; i++ {
				reg.Counter("stress_total", lbl).Inc()
				reg.Gauge("stress_gauge", lbl).Set(int64(i))
				reg.Histogram("stress_ns", lbl).Observe(uint64(i))
			}
		}(w)
	}
	// Wait for workers (the first `workers` Adds after the snapshotters).
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for {
		points := reg.Snapshot()
		var total uint64
		for _, p := range points {
			if p.Name == "stress_total" {
				total += p.Value
			}
		}
		if total == workers*perWorker {
			break
		}
		select {
		case <-done:
			t.Fatalf("workers done but counter total %d != %d", total, workers*perWorker)
		default:
		}
	}
	close(stop)
	<-done

	points := reg.Snapshot()
	var count, sum uint64
	for _, p := range points {
		if p.Name == "stress_ns" {
			count += p.Count
			sum += p.Sum
			var inBuckets uint64
			for _, b := range p.Buckets {
				inBuckets += b.Count
			}
			if inBuckets != p.Count {
				t.Errorf("bucket sum %d != count %d", inBuckets, p.Count)
			}
		}
	}
	if count != workers*perWorker {
		t.Errorf("histogram count %d, want %d", count, workers*perWorker)
	}
	wantSum := uint64(workers) * (perWorker * (perWorker - 1) / 2)
	if sum != wantSum {
		t.Errorf("histogram sum %d, want %d", sum, wantSum)
	}
}

// TestPromRoundTrip renders a mixed registry and parses it back.
func TestPromRoundTrip(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("calls_total", L("verb", "chunk-put"), L("addr", "inproc-1")).Add(42)
	reg.Gauge("interval_ns").Set(-5)
	h := reg.Histogram("lat_ns", L("verb", `we"ird\label`))
	for _, v := range []uint64{0, 1, 3, 900, 5000, 1 << 40} {
		h.Observe(v)
	}

	text := reg.PromText()
	if !strings.HasPrefix(text, "# blobcr-metrics "+ExpositionVersion+"\n") {
		t.Fatalf("missing version marker:\n%s", text)
	}
	points, err := ParseProm(text)
	if err != nil {
		t.Fatalf("ParseProm: %v\n%s", err, text)
	}

	c := Find(points, "calls_total", L("verb", "chunk-put"))
	if c == nil || c.Value != 42 || c.Label("addr") != "inproc-1" {
		t.Fatalf("counter round-trip: %+v", c)
	}
	g := Find(points, "interval_ns")
	if g == nil || g.GaugeValue != -5 {
		t.Fatalf("gauge round-trip: %+v", g)
	}
	hp := Find(points, "lat_ns", L("verb", `we"ird\label`))
	if hp == nil {
		t.Fatalf("histogram with quoted label lost:\n%s", text)
	}
	if hp.Count != 6 || hp.Sum != 0+1+3+900+5000+1<<40 {
		t.Fatalf("histogram count/sum: %+v", hp)
	}
	var orig *Point
	for _, p := range reg.Snapshot() {
		if p.Kind == KindHistogram {
			q := p
			orig = &q
		}
	}
	if len(hp.Buckets) != len(orig.Buckets) {
		t.Fatalf("bucket count %d != %d", len(hp.Buckets), len(orig.Buckets))
	}
	for i := range hp.Buckets {
		if hp.Buckets[i] != orig.Buckets[i] {
			t.Fatalf("bucket %d: %+v != %+v", i, hp.Buckets[i], orig.Buckets[i])
		}
	}
}

// TestQuantile sanity-checks the bucket interpolation.
func TestQuantile(t *testing.T) {
	var h Histogram
	for i := 0; i < 1000; i++ {
		h.Observe(100) // all in bucket [64..127]
	}
	reg := NewRegistry()
	_ = reg
	p := Point{Kind: KindHistogram, Count: h.Count(), Sum: h.Sum()}
	for i := range h.buckets {
		if n := h.buckets[i].Load(); n > 0 {
			p.Buckets = append(p.Buckets, Bucket{UpperBound: BucketBound(i), Count: n})
		}
	}
	for _, q := range []float64{0.5, 0.99} {
		v := p.Quantile(q)
		if v < 65 || v > 127 {
			t.Errorf("q%.2f = %.1f outside bucket [65..127]", q, v)
		}
	}
	if m := p.Mean(); m != 100 {
		t.Errorf("mean %.1f, want 100", m)
	}
}

// TestSpanRecordsIntoRegistryAndTrace checks the ctx plumbing.
func TestSpanRecordsIntoRegistryAndTrace(t *testing.T) {
	reg := NewRegistry()
	tr := NewTrace()
	ctx := WithTrace(WithRegistry(context.Background(), reg), tr)

	_, sp := StartSpan(ctx, "stage/one")
	time.Sleep(time.Millisecond)
	sp.End()
	sp.End() // idempotent

	h := reg.Histogram("span_ns", L("span", "stage/one"))
	if h.Count() != 1 {
		t.Fatalf("span histogram count %d, want 1", h.Count())
	}
	g := reg.Gauge("span_last_ns", L("span", "stage/one"))
	if g.Value() <= 0 {
		t.Fatalf("span_last_ns gauge %d, want > 0", g.Value())
	}
	spans := tr.Spans()
	if len(spans) != 1 || spans[0].Name != "stage/one" {
		t.Fatalf("trace spans: %+v", spans)
	}
	if !spans[0].End.After(spans[0].Start) {
		t.Fatal("span end not after start")
	}
	if _, ok := tr.ByName("stage/one"); !ok {
		t.Fatal("ByName missed the span")
	}
	// Default-registry fallback must not panic and must record somewhere.
	_, sp2 := StartSpan(context.Background(), "stage/detached")
	sp2.End()
	if RegistryFrom(context.Background()) != Default {
		t.Fatal("RegistryFrom fallback")
	}
	if TraceFrom(context.Background()) != nil {
		t.Fatal("TraceFrom on bare ctx")
	}
}

// TestParsePromLargeIntegers checks that values above 2^53 survive the
// parse exactly; a float64 round-trip would silently truncate them.
func TestParsePromLargeIntegers(t *testing.T) {
	reg := NewRegistry()
	const big = uint64(1)<<63 + 3
	const negBig = -(int64(1)<<62 + 5)
	reg.Counter("bytes_total").Add(big)
	reg.Gauge("drift_ns").Set(negBig)
	reg.Histogram("span_ns").Observe(1<<60 + 7)

	points, err := ParseProm(reg.PromText())
	if err != nil {
		t.Fatal(err)
	}
	if c := Find(points, "bytes_total"); c == nil || c.Value != big {
		t.Fatalf("counter round-trip: %+v, want %d", c, big)
	}
	if g := Find(points, "drift_ns"); g == nil || g.GaugeValue != negBig {
		t.Fatalf("gauge round-trip: %+v, want %d", g, negBig)
	}
	if h := Find(points, "span_ns"); h == nil || h.Sum != 1<<60+7 {
		t.Fatalf("histogram sum round-trip: %+v", h)
	}
}

// TestPromCrossKindNameReuse registers the same name under two kinds: each
// kind must get its own TYPE line so ParseProm classifies both correctly.
func TestPromCrossKindNameReuse(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("queue_depth").Add(7)
	reg.Gauge("queue_depth").Set(-2)

	text := reg.PromText()
	if n := strings.Count(text, "# TYPE queue_depth "); n != 2 {
		t.Fatalf("want 2 TYPE lines for queue_depth, got %d:\n%s", n, text)
	}
	points, err := ParseProm(text)
	if err != nil {
		t.Fatalf("ParseProm: %v\n%s", err, text)
	}
	var haveCounter, haveGauge bool
	for _, p := range points {
		if p.Name != "queue_depth" {
			continue
		}
		switch p.Kind {
		case KindCounter:
			haveCounter = p.Value == 7
		case KindGauge:
			haveGauge = p.GaugeValue == -2
		}
	}
	if !haveCounter || !haveGauge {
		t.Fatalf("cross-kind round-trip lost a series (counter=%v gauge=%v):\n%s", haveCounter, haveGauge, text)
	}
}

// TestWritePromClampsInfBucket feeds WriteProm a racy snapshot where the
// cumulative finite buckets exceed Count; the +Inf bucket and _count must
// be clamped up so the exposition stays monotonic.
func TestWritePromClampsInfBucket(t *testing.T) {
	points := []Point{{
		Name: "lat_ns", Kind: KindHistogram,
		Count: 2, Sum: 30,
		Buckets: []Bucket{{UpperBound: 15, Count: 3}},
	}}
	var b strings.Builder
	if err := WriteProm(&b, points); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	if !strings.Contains(text, `lat_ns_bucket{le="+Inf"} 3`) {
		t.Fatalf("+Inf bucket not clamped to cumulative total:\n%s", text)
	}
	if !strings.Contains(text, "lat_ns_count 3") {
		t.Fatalf("_count not clamped to cumulative total:\n%s", text)
	}
}
