package obs

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// TextReply answers the tokenless introspection verbs every REST-ful text
// endpoint (proxy, supervisor, repair) shares, from this registry:
//
//	METRICS [<offset>] → OK v1\n<exposition chunk>
//	                   | OK v1 MORE <next-offset>\n<exposition chunk>
//	TRACE <trace-hex>  → OK v1\n<span lines>
//	FLIGHT             → OK v1\n<span lines>
//	HISTORY [<secs>]   → OK v1\n<window report lines> (MarshalWindow)
//	HEALTH             → OK v1\nOK | OK v1\nDEGRADED <alert> ...
//
// A METRICS exposition larger than ExpositionChunkBytes is split across
// frames: the scraper follows the MORE continuations by re-requesting with
// the returned offset until a reply without MORE arrives (see
// transport.ScrapeExposition). handled reports whether fields named one of
// these verbs; a FLIGHT with arguments is left to the endpoint (the
// supervisor serves archived dumps under FLIGHT <node>).
func (r *Registry) TextReply(fields []string) (resp []byte, handled bool) {
	if len(fields) == 0 {
		return nil, false
	}
	switch fields[0] {
	case "METRICS":
		off := 0
		switch {
		case len(fields) == 1:
		case len(fields) == 2:
			v, err := strconv.Atoi(fields[1])
			if err != nil || v < 0 {
				return []byte("ERR bad metrics offset"), true
			}
			off = v
		default:
			return []byte("ERR malformed metrics request"), true
		}
		chunk, next := r.ExpositionAt(off)
		if next < 0 {
			return []byte("OK " + ExpositionVersion + "\n" + chunk), true
		}
		return fmt.Appendf(nil, "OK %s MORE %d\n%s", ExpositionVersion, next, chunk), true
	case "TRACE":
		if len(fields) != 2 {
			return []byte("ERR malformed trace request"), true
		}
		id, err := strconv.ParseUint(fields[1], 16, 64)
		if err != nil || id == 0 {
			return []byte("ERR bad trace id"), true
		}
		return append([]byte("OK "+ExpositionVersion+"\n"), MarshalSpans(r.TraceSpans(id))...), true
	case "FLIGHT":
		if len(fields) != 1 {
			return nil, false
		}
		return append([]byte("OK "+ExpositionVersion+"\n"), MarshalSpans(r.FlightSpans())...), true
	case "HISTORY":
		window := DefaultHistoryWindow
		switch {
		case len(fields) == 1:
		case len(fields) == 2:
			secs, err := strconv.Atoi(fields[1])
			if err != nil || secs <= 0 {
				return []byte("ERR bad history window"), true
			}
			window = time.Duration(secs) * time.Second
		default:
			return []byte("ERR malformed history request"), true
		}
		h := r.History()
		if h == nil {
			return []byte("ERR no history ring"), true
		}
		return append([]byte("OK "+ExpositionVersion+"\n"), MarshalWindow(h.Window(window))...), true
	case "HEALTH":
		if len(fields) != 1 {
			return []byte("ERR malformed health request"), true
		}
		ok, firing := r.Health()
		if ok {
			return []byte("OK " + ExpositionVersion + "\nOK"), true
		}
		return []byte("OK " + ExpositionVersion + "\nDEGRADED " + strings.Join(firing, " ")), true
	}
	return nil, false
}
