package obs

import (
	"io"
	"net/http"
	"strings"
	"testing"
)

// TestServeDebugExposesMetricsAndVars boots the debug listener on a random
// port and checks /metrics serves the exposition format and /debug/vars the
// expvar JSON.
func TestServeDebugExposesMetricsAndVars(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("demo_total").Add(7)
	srv, err := ServeDebug("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) string {
		resp, err := http.Get("http://" + srv.Addr + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		return string(body)
	}

	metrics := get("/metrics")
	if !strings.HasPrefix(metrics, versionComment) {
		t.Errorf("/metrics missing version comment: %q", metrics[:min(len(metrics), 60)])
	}
	if !strings.Contains(metrics, "demo_total 7") {
		t.Errorf("/metrics missing counter: %q", metrics)
	}
	if pts, err := ParseProm(metrics); err != nil || Find(pts, "demo_total") == nil {
		t.Errorf("/metrics does not round-trip through ParseProm: %v", err)
	}
	if vars := get("/debug/vars"); !strings.Contains(vars, "memstats") {
		t.Errorf("/debug/vars missing memstats: %q", vars[:min(len(vars), 80)])
	}
}
