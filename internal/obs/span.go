package obs

import (
	"context"
	"sync"
	"time"
)

// ctxKey keys the context values this package threads through call chains.
type ctxKey int

const (
	registryKey ctxKey = iota
	traceKey
	spanContextKey
)

// WithRegistry returns a context carrying reg; StartSpan and instrumented
// layers below the caller record into it instead of Default.
func WithRegistry(ctx context.Context, reg *Registry) context.Context {
	if reg == nil {
		return ctx
	}
	return context.WithValue(ctx, registryKey, reg)
}

// RegistryFrom returns the registry carried by ctx, or Default.
func RegistryFrom(ctx context.Context) *Registry {
	if ctx != nil {
		if reg, ok := ctx.Value(registryKey).(*Registry); ok && reg != nil {
			return reg
		}
	}
	return Default
}

// SpanRecord is one finished span in a Trace. Trace, ID and Parent carry
// the distributed-trace identity: ID is unique across processes (random
// per-process high bits plus a sequence), Parent is the ID of the span that
// was active when this one started — on the far side of an RPC, that is the
// caller's RPC span, which is how cross-process trees reassemble.
type SpanRecord struct {
	Trace  uint64
	ID     uint64
	Parent uint64
	Name   string
	Start  time.Time
	End    time.Time
}

// Duration returns the span's length.
func (r SpanRecord) Duration() time.Duration { return r.End.Sub(r.Start) }

// Trace collects finished spans in completion order. Attach one with
// WithTrace to observe the exact stage decomposition of a single operation
// (the commit-pipeline span test and bench breakdowns use this); metrics
// histograms aggregate the same spans across all operations.
type Trace struct {
	mu    sync.Mutex
	spans []SpanRecord
}

// NewTrace returns an empty trace.
func NewTrace() *Trace { return &Trace{} }

// Spans returns a copy of the finished spans, in completion order.
func (t *Trace) Spans() []SpanRecord {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]SpanRecord(nil), t.spans...)
}

// ByName returns the first finished span with this name and whether one
// exists.
func (t *Trace) ByName(name string) (SpanRecord, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, s := range t.spans {
		if s.Name == name {
			return s, true
		}
	}
	return SpanRecord{}, false
}

func (t *Trace) add(r SpanRecord) {
	t.mu.Lock()
	t.spans = append(t.spans, r)
	t.mu.Unlock()
}

// WithTrace returns a context carrying tr; spans started under it append
// their records to tr when they end.
func WithTrace(ctx context.Context, tr *Trace) context.Context {
	if tr == nil {
		return ctx
	}
	return context.WithValue(ctx, traceKey, tr)
}

// TraceFrom returns the trace carried by ctx, or nil.
func TraceFrom(ctx context.Context) *Trace {
	if ctx == nil {
		return nil
	}
	tr, _ := ctx.Value(traceKey).(*Trace)
	return tr
}

// Span is one in-flight named stage. End records it into the registry (a
// span_ns histogram and span_last_ns gauge labeled with the span name, the
// flight-recorder ring, and — when a distributed trace is active — the
// registry's per-trace span store) and into the context's Trace, if any.
type Span struct {
	name   string
	start  time.Time
	reg    *Registry
	tr     *Trace
	trace  uint64
	id     uint64
	parent uint64
	done   bool
}

// StartSpan begins a named span using the registry and trace carried by
// ctx. Every span gets a globally unique ID; when ctx carries a distributed
// span context the new span parents under it and the returned context
// carries the new span's identity, so spans opened below it (including on
// the far side of an RPC) nest correctly. Without an active trace the
// returned context is ctx unchanged.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	s := &Span{
		name:  name,
		start: time.Now(),
		reg:   RegistryFrom(ctx),
		tr:    TraceFrom(ctx),
		id:    nextSpanID(),
	}
	if sc, ok := SpanContextFrom(ctx); ok {
		s.trace, s.parent = sc.Trace, sc.Span
		ctx = WithSpanContext(ctx, SpanContext{Trace: sc.Trace, Span: s.id})
	}
	return ctx, s
}

// StartSpanIn begins a named span bound directly to reg, for layers with no
// context plumbing (the segment log's group-commit flush path). The span has
// no trace identity; it still lands in reg's metrics and flight recorder.
func StartSpanIn(reg *Registry, name string) *Span {
	if reg == nil {
		reg = Default
	}
	return &Span{name: name, start: time.Now(), reg: reg, id: nextSpanID()}
}

// ID returns the span's unique identity (nonzero once started).
func (s *Span) ID() uint64 { return s.id }

// End finishes the span. Calling End more than once records only the first.
func (s *Span) End() {
	if s == nil || s.done {
		return
	}
	s.done = true
	end := time.Now()
	d := end.Sub(s.start)
	if d < 0 {
		d = 0
	}
	label := L("span", s.name)
	s.reg.Histogram("span_ns", label).Observe(uint64(d))
	s.reg.Gauge("span_last_ns", label).Set(int64(d))
	rec := SpanRecord{Trace: s.trace, ID: s.id, Parent: s.parent, Name: s.name, Start: s.start, End: end}
	if s.tr != nil {
		s.tr.add(rec)
	}
	s.reg.recordSpan(rec)
}

// The five commit-pipeline stage names, in execution order: mirror records
// capture under the suspend window; the blobseer client records the rest.
// SpanCommitStageLocal is the multilevel-checkpointing stage between them:
// with a node-local write-back tier attached, a capture is staged into the
// local store (and replicated to the partner proxy) under this span before
// the remote drain runs the probe/upload/publish/durable stages.
const (
	SpanCommitCapture    = "commit/capture"
	SpanCommitStageLocal = "commit/stage-local"
	SpanCommitProbe      = "commit/probe"
	SpanCommitUpload     = "commit/upload"
	SpanCommitPublish    = "commit/publish"
	SpanCommitDurable    = "commit/durable"
)

// CommitStages lists the five always-present pipeline stage span names in
// order. The stage-local span is not included: it only exists on modules
// with a local tier attached (CommitStagesLocalTier covers those).
var CommitStages = []string{
	SpanCommitCapture,
	SpanCommitProbe,
	SpanCommitUpload,
	SpanCommitPublish,
	SpanCommitDurable,
}

// CommitStagesLocalTier lists the commit stages of a module with a
// node-local write-back tier attached, in order: the capture is acknowledged
// locally safe after stage-local, and the remaining stages run in the
// background drain.
var CommitStagesLocalTier = []string{
	SpanCommitCapture,
	SpanCommitStageLocal,
	SpanCommitProbe,
	SpanCommitUpload,
	SpanCommitPublish,
	SpanCommitDurable,
}
