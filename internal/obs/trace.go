// Distributed-trace identity and the per-process span stores: a bounded
// per-trace store (so a client can collect a commit's remote spans over the
// TRACE wire verb and assemble one cross-process tree) and an always-on
// flight recorder (a fixed-capacity overwrite-oldest ring of recent spans,
// dumped over FLIGHT for black-box post-mortems after a process dies).

package obs

import (
	"context"
	"fmt"
	mrand "math/rand/v2"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// SpanContext is the distributed-trace identity carried across call chains
// and, by internal/transport, across the wire: the trace every span joins
// and the currently active span new spans parent under.
type SpanContext struct {
	Trace uint64
	Span  uint64
}

// WithSpanContext returns a context carrying sc. A zero trace ID clears the
// span context instead (nothing downstream will propagate it).
func WithSpanContext(ctx context.Context, sc SpanContext) context.Context {
	return context.WithValue(ctx, spanContextKey, sc)
}

// SpanContextFrom returns the span context carried by ctx and whether an
// active trace is present.
func SpanContextFrom(ctx context.Context) (SpanContext, bool) {
	if ctx == nil {
		return SpanContext{}, false
	}
	sc, ok := ctx.Value(spanContextKey).(SpanContext)
	return sc, ok && sc.Trace != 0
}

// BeginTrace starts a new distributed trace: the returned context carries a
// fresh trace ID with no active span, so the next StartSpan under it becomes
// the trace's root. The ID is what TRACE endpoints are queried with.
func BeginTrace(ctx context.Context) (context.Context, uint64) {
	id := nextSpanID()
	return WithSpanContext(ctx, SpanContext{Trace: id}), id
}

// HandlerContext prepares a server-side context for an incoming request:
// spans below record into the handler's own registry, and any in-memory
// *Trace attached by an in-process caller is detached (a flat Trace collects
// one process's stage decomposition; server spans reach the caller through
// the per-trace store and the TRACE verb instead, exactly as over TCP). The
// distributed span context re-established by the transport is kept.
func HandlerContext(ctx context.Context, reg *Registry) context.Context {
	ctx = WithRegistry(ctx, reg)
	if TraceFrom(ctx) != nil {
		ctx = context.WithValue(ctx, traceKey, (*Trace)(nil))
	}
	return ctx
}

// Span IDs are unique across processes without coordination: random
// per-process high 32 bits, sequential low 32 bits. Trace IDs share the
// space. Zero is never issued — it means "no span" in headers and records.
var (
	spanIDHi  = mrand.Uint64() << 32
	spanIDSeq atomic.Uint64
)

func nextSpanID() uint64 {
	for {
		if id := spanIDHi | (spanIDSeq.Add(1) & 0xFFFFFFFF); id != 0 {
			return id
		}
	}
}

// Capacities of the per-process span stores. They bound memory, not
// correctness: a trace evicted FIFO or a span past the per-trace cap is
// simply absent from that endpoint's TRACE reply.
const (
	TraceStoreCap = 64  // traces retained per registry
	TraceSpanCap  = 512 // spans retained per trace
	FlightCap     = 256 // flight-recorder ring capacity
)

// spanStore is a Registry's trace-collection state. The zero value is ready
// to use (registries are constructed in several places).
type spanStore struct {
	mu     sync.Mutex
	traces map[uint64][]SpanRecord
	order  []uint64 // FIFO eviction order of traces
	flight []SpanRecord
	next   int // overwrite cursor once the flight ring is full
}

// recordSpan files one finished span into the flight ring and, when it
// belongs to a trace, into the bounded per-trace store.
func (r *Registry) recordSpan(rec SpanRecord) {
	ss := &r.spans
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if len(ss.flight) < FlightCap {
		ss.flight = append(ss.flight, rec)
	} else {
		ss.flight[ss.next] = rec
		ss.next = (ss.next + 1) % FlightCap
	}
	if rec.Trace == 0 {
		return
	}
	spans, ok := ss.traces[rec.Trace]
	if !ok {
		if ss.traces == nil {
			ss.traces = make(map[uint64][]SpanRecord)
		}
		if len(ss.order) >= TraceStoreCap {
			delete(ss.traces, ss.order[0])
			ss.order = ss.order[1:]
		}
		ss.order = append(ss.order, rec.Trace)
	}
	if len(spans) < TraceSpanCap {
		ss.traces[rec.Trace] = append(spans, rec)
	}
}

// TraceSpans returns a copy of the spans this registry holds for one trace,
// in completion order. Empty when the trace is unknown or evicted.
func (r *Registry) TraceSpans(trace uint64) []SpanRecord {
	ss := &r.spans
	ss.mu.Lock()
	defer ss.mu.Unlock()
	return append([]SpanRecord(nil), ss.traces[trace]...)
}

// FlightSpans returns a copy of the flight-recorder ring, oldest first.
func (r *Registry) FlightSpans() []SpanRecord {
	ss := &r.spans
	ss.mu.Lock()
	defer ss.mu.Unlock()
	out := make([]SpanRecord, 0, len(ss.flight))
	if len(ss.flight) == FlightCap {
		out = append(out, ss.flight[ss.next:]...)
		out = append(out, ss.flight[:ss.next]...)
	} else {
		out = append(out, ss.flight...)
	}
	return out
}

// MarshalSpans renders spans in the line format the TRACE and FLIGHT wire
// verbs reply with: one span per line,
//
//	span <trace> <id> <parent> <start-unixnano> <end-unixnano> <name>
//
// IDs in hex (they are random-based), times as decimal wall-clock
// nanoseconds, the name quoted. Wall clocks do not compare across machines;
// AssembleTrace re-anchors remote spans inside their parent RPC window.
func MarshalSpans(spans []SpanRecord) []byte {
	var b strings.Builder
	for _, s := range spans {
		fmt.Fprintf(&b, "span %x %x %x %d %d %s\n",
			s.Trace, s.ID, s.Parent, s.Start.UnixNano(), s.End.UnixNano(), strconv.Quote(s.Name))
	}
	return []byte(b.String())
}

// ParseSpans decodes MarshalSpans output. Blank lines are skipped; any
// malformed line is an error (a truncated reply should not silently drop
// spans).
func ParseSpans(data []byte) ([]SpanRecord, error) {
	var out []SpanRecord
	for ln, line := range strings.Split(string(data), "\n") {
		if strings.TrimSpace(line) == "" {
			continue
		}
		parts := strings.SplitN(line, " ", 7)
		if len(parts) != 7 || parts[0] != "span" {
			return nil, fmt.Errorf("obs: span line %d malformed: %q", ln+1, line)
		}
		var rec SpanRecord
		var startNs, endNs int64
		var err error
		if rec.Trace, err = strconv.ParseUint(parts[1], 16, 64); err == nil {
			if rec.ID, err = strconv.ParseUint(parts[2], 16, 64); err == nil {
				if rec.Parent, err = strconv.ParseUint(parts[3], 16, 64); err == nil {
					if startNs, err = strconv.ParseInt(parts[4], 10, 64); err == nil {
						endNs, err = strconv.ParseInt(parts[5], 10, 64)
					}
				}
			}
		}
		if err == nil {
			rec.Name, err = strconv.Unquote(parts[6])
		}
		if err != nil {
			return nil, fmt.Errorf("obs: span line %d: %v", ln+1, err)
		}
		rec.Start, rec.End = time.Unix(0, startNs), time.Unix(0, endNs)
		out = append(out, rec)
	}
	return out, nil
}
