package obs

import "math/bits"

// bucketIndex inverts BucketBound: the ring-buffer slot whose inclusive
// upper bound is bound.
func bucketIndex(bound uint64) int {
	if bound == 0 {
		return 0
	}
	if bound == ^uint64(0) {
		return histBuckets - 1
	}
	return bits.Len64(bound)
}

// Import force-sets scraped points into the registry, rewriting each series
// under the extra labels — the federation merge: the supervisor imports
// every node's scrape under node=<name>, and one METRICS reply then answers
// for the whole fleet. Points already carrying any of the extra label keys
// are skipped: re-importing an already-federated series (the supervisor
// scraping a registry it shares in-process, or a scrape of another
// federator) would otherwise mint node-labeled copies of node-labeled
// copies without bound.
//
// Import overwrites, it does not accumulate: each scrape replaces the
// previous values, so a counter regressing across scrapes (a restarted node)
// simply shows its new, lower value. Multi-word histogram stores are set
// non-atomically — a concurrent reader can see a torn snapshot, the same
// consistency a point-in-time Snapshot already has under concurrent Observe.
func (r *Registry) Import(points []Point, extra ...Label) {
	for i := range points {
		p := &points[i]
		already := false
		for _, l := range extra {
			if p.Label(l.Key) != "" {
				already = true
				break
			}
		}
		if already {
			continue
		}
		labels := make([]Label, 0, len(p.Labels)+len(extra))
		labels = append(labels, p.Labels...)
		labels = append(labels, extra...)
		switch p.Kind {
		case KindCounter:
			r.lookup(KindCounter, p.Name, labels).c.v.Store(p.Value)
		case KindGauge:
			r.lookup(KindGauge, p.Name, labels).g.Set(p.GaugeValue)
		case KindHistogram:
			h := r.lookup(KindHistogram, p.Name, labels).h
			var want [histBuckets]uint64
			for _, b := range p.Buckets {
				want[bucketIndex(b.UpperBound)] += b.Count
			}
			h.count.Store(p.Count)
			h.sum.Store(p.Sum)
			for i := range h.buckets {
				h.buckets[i].Store(want[i])
			}
		}
	}
}
