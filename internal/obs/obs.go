// Package obs is the telemetry plane: a dependency-free concurrent metrics
// registry (counters, gauges, log-scaled histograms) plus lightweight span
// tracing, threaded through the repo's existing context plumbing. Every hot
// layer — transport, blobseer, mirror, proxy, supervisor, repair — records
// into a Registry; the METRICS wire verb and the -debug-addr HTTP listener
// expose snapshots in Prometheus text exposition format, and blobcr-ctl
// metrics renders them.
//
// The package is intentionally stdlib-only and allocation-light on the hot
// path: metric handles are looked up once and then updated with single
// atomic operations, histograms use fixed power-of-two buckets (bucket
// index = bits.Len64(value)), and snapshots never block writers.
package obs

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Default is the process-wide registry. Components accept an optional
// *Registry and fall back to Default, so single-process deployments (the
// daemons, the benches) share one scrape surface without any wiring.
var Default = NewRegistry()

// Label is one name dimension, e.g. {Key: "verb", Value: "chunk-put"}.
type Label struct {
	Key, Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Kind discriminates the metric types in a snapshot.
type Kind uint8

const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "unknown"
}

// Counter is a monotonically increasing uint64.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a settable signed value (last suspend window, current interval,
// resident chunks during a drain, ...).
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the value by delta.
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// histBuckets is the fixed bucket count: bucket i holds values whose
// bits.Len64 is i, i.e. bucket 0 holds 0, bucket i holds [2^(i-1), 2^i).
// 65 buckets cover the full uint64 range, so latencies in nanoseconds and
// sizes in bytes both fit without configuration.
const histBuckets = 65

// Histogram is a fixed log2-bucketed histogram safe for concurrent use.
// Observations and snapshots are lock-free; a snapshot taken during a
// storm of updates is a consistent-enough view (per-bucket atomic reads).
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Uint64
	buckets [histBuckets]atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bits.Len64(v)].Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() uint64 { return h.sum.Load() }

// BucketBound returns the inclusive upper bound of bucket i: 0 for bucket
// 0, 2^i-1 for 0 < i < 64, and MaxUint64 for the last bucket.
func BucketBound(i int) uint64 {
	if i <= 0 {
		return 0
	}
	if i >= 64 {
		return ^uint64(0)
	}
	return 1<<uint(i) - 1
}

// metric is one registered instrument with its identity.
type metric struct {
	name   string
	labels []Label
	kind   Kind
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// Registry holds named instruments. Lookups take a read lock; the returned
// handles are updated with atomics only, so hot paths should cache them.
// It also owns the process's span stores (trace.go): the bounded per-trace
// collection served over TRACE and the always-on flight-recorder ring
// served over FLIGHT.
type Registry struct {
	mu      sync.RWMutex
	metrics map[string]*metric
	spans   spanStore

	// hist is the registry's metric history ring (history.go), attached by
	// StartHistory; nil until then. health is the readiness callback
	// (SetHealth) behind the HEALTH verb and the /healthz endpoint.
	hist   atomic.Pointer[History]
	health atomic.Pointer[func() (ok bool, firing []string)]
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]*metric)}
}

// key renders the identity of an instrument. The kind is part of the key so
// a name collision across kinds surfaces as duplicate series in the scrape
// (visible) rather than a runtime panic (fatal).
func key(kind Kind, name string, labels []Label) string {
	var b strings.Builder
	b.Grow(len(name) + 16*len(labels) + 2)
	b.WriteByte(byte('0' + kind))
	b.WriteByte('\xff')
	b.WriteString(name)
	for _, l := range labels {
		b.WriteByte('\xff')
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
	}
	return b.String()
}

func (r *Registry) lookup(kind Kind, name string, labels []Label) *metric {
	k := key(kind, name, labels)
	r.mu.RLock()
	m := r.metrics[k]
	r.mu.RUnlock()
	if m != nil {
		return m
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m = r.metrics[k]; m != nil {
		return m
	}
	m = &metric{name: name, labels: append([]Label(nil), labels...), kind: kind}
	switch kind {
	case KindCounter:
		m.c = new(Counter)
	case KindGauge:
		m.g = new(Gauge)
	case KindHistogram:
		m.h = new(Histogram)
	}
	r.metrics[k] = m
	return m
}

// Counter returns (creating if needed) the counter with this identity.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	return r.lookup(KindCounter, name, labels).c
}

// Gauge returns (creating if needed) the gauge with this identity.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	return r.lookup(KindGauge, name, labels).g
}

// Histogram returns (creating if needed) the histogram with this identity.
func (r *Registry) Histogram(name string, labels ...Label) *Histogram {
	return r.lookup(KindHistogram, name, labels).h
}

// Bucket is one non-empty histogram bucket in a snapshot.
type Bucket struct {
	UpperBound uint64 // inclusive; BucketBound of the bucket index
	Count      uint64 // observations in this bucket (not cumulative)
}

// Point is one metric in a snapshot.
type Point struct {
	Name   string
	Labels []Label
	Kind   Kind

	Value      uint64 // counter
	GaugeValue int64  // gauge

	Count   uint64 // histogram
	Sum     uint64
	Buckets []Bucket
}

// Label returns the value for a label key, or "".
func (p *Point) Label(k string) string {
	for _, l := range p.Labels {
		if l.Key == k {
			return l.Value
		}
	}
	return ""
}

// Mean returns the mean observed value of a histogram point.
func (p *Point) Mean() float64 {
	if p.Count == 0 {
		return 0
	}
	return float64(p.Sum) / float64(p.Count)
}

// Quantile estimates the q-quantile (0..1) of a histogram point from its
// buckets, interpolating geometrically inside the containing bucket.
func (p *Point) Quantile(q float64) float64 {
	if p.Count == 0 {
		return 0
	}
	rank := q * float64(p.Count)
	var seen uint64
	for _, b := range p.Buckets {
		seen += b.Count
		if float64(seen) >= rank {
			if b.UpperBound <= 1 {
				return float64(b.UpperBound)
			}
			lo := float64(b.UpperBound)/2 + 1
			hi := float64(b.UpperBound)
			frac := 1 - (float64(seen)-rank)/float64(b.Count)
			return lo + (hi-lo)*frac
		}
	}
	return float64(p.Buckets[len(p.Buckets)-1].UpperBound)
}

// Snapshot returns a point-in-time copy of every registered metric, sorted
// by name then labels. Writers are never blocked.
func (r *Registry) Snapshot() []Point {
	r.mu.RLock()
	ms := make([]*metric, 0, len(r.metrics))
	for _, m := range r.metrics {
		ms = append(ms, m)
	}
	r.mu.RUnlock()

	points := make([]Point, 0, len(ms))
	for _, m := range ms {
		p := Point{Name: m.name, Labels: m.labels, Kind: m.kind}
		switch m.kind {
		case KindCounter:
			p.Value = m.c.Value()
		case KindGauge:
			p.GaugeValue = m.g.Value()
		case KindHistogram:
			p.Count = m.h.count.Load()
			p.Sum = m.h.sum.Load()
			for i := range m.h.buckets {
				if n := m.h.buckets[i].Load(); n > 0 {
					p.Buckets = append(p.Buckets, Bucket{UpperBound: BucketBound(i), Count: n})
				}
			}
		}
		points = append(points, p)
	}
	sort.Slice(points, func(i, j int) bool {
		if points[i].Name != points[j].Name {
			return points[i].Name < points[j].Name
		}
		// Group by kind so WriteProm emits one TYPE line per (name, kind)
		// run when a name is reused across kinds.
		if points[i].Kind != points[j].Kind {
			return points[i].Kind < points[j].Kind
		}
		return labelString(points[i].Labels) < labelString(points[j].Labels)
	})
	return points
}

func labelString(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	parts := make([]string, len(labels))
	for i, l := range labels {
		parts[i] = fmt.Sprintf("%s=%q", l.Key, l.Value)
	}
	return strings.Join(parts, ",")
}

// Stopwatch measures one interval for histogram observation. Instrumented
// layers use this instead of diffing time.Now() themselves, keeping all
// timing idiom inside obs (enforced by scripts/check-timing.sh).
type Stopwatch struct {
	start time.Time
}

// StartTimer starts a stopwatch.
func StartTimer() Stopwatch { return Stopwatch{start: time.Now()} }

// Elapsed returns the time since the stopwatch started.
func (s Stopwatch) Elapsed() time.Duration { return time.Since(s.start) }

// ElapsedNanos returns the elapsed time in nanoseconds, clamped at zero.
func (s Stopwatch) ElapsedNanos() uint64 {
	d := time.Since(s.start)
	if d < 0 {
		return 0
	}
	return uint64(d)
}

// ObserveInto records the elapsed nanoseconds into h.
func (s Stopwatch) ObserveInto(h *Histogram) { h.Observe(s.ElapsedNanos()) }
