package obs

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strings"
	"time"
)

// ServeDebug binds an HTTP debug listener on addr exposing the registry and
// the Go runtime's standard introspection surface:
//
//	/metrics          Prometheus text exposition of reg
//	/healthz          readiness: 200 "ok" | 503 "degraded: <alerts>"
//	/debug/pprof/*    CPU, heap, goroutine, block profiles (net/http/pprof)
//	/debug/vars       expvar (memstats, cmdline)
//
// The daemons (blobcr-proxyd, blobseerd) wire it behind their -debug-addr
// flag. The returned server is already serving; Close releases the port.
// The handler set is built on a private mux, so importing this package does
// not pollute http.DefaultServeMux with pprof routes.
func ServeDebug(addr string, reg *Registry) (*http.Server, error) {
	if reg == nil {
		reg = Default
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		WriteProm(w, reg.Snapshot()) //nolint:errcheck // best effort over HTTP
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		ok, firing := reg.Health()
		if ok {
			fmt.Fprintln(w, "ok")
			return
		}
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintf(w, "degraded: %s\n", strings.Join(firing, " "))
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	// Addr records where we actually bound (addr may carry port 0).
	srv := &http.Server{Addr: ln.Addr().String(), Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go srv.Serve(ln) //nolint:errcheck // Serve returns ErrServerClosed on Close
	return srv, nil
}
