// Command blobseerd runs one BlobSeer service role over TCP. A full
// deployment is one version manager, one provider manager, several metadata
// providers and one data provider per compute node:
//
//	blobseerd -role vmanager -listen :7700
//	blobseerd -role pmanager -listen :7701
//	blobseerd -role meta     -listen :7710
//	blobseerd -role data     -listen :7720 -pmanager host:7701 -dir /var/blobseer
//
// Data providers register themselves with the provider manager and store
// chunks through a storage engine selected by -store: the durable
// log-structured segment engine (seglog — group commit, per-chunk
// compression, crash recovery; the default whenever -dir is set), one
// fsync-per-chunk file-per-chunk store (files), or memory (mem). The
// content-addressed dedup index (internal/cas) is layered on top; an
// existing data directory is re-indexed on startup.
//
// Every role answers the binary TRACE/FLIGHT introspection ops on its
// service port — the spans it holds for one distributed trace, and its
// always-on flight-recorder ring (blobcr-ctl trace / flight fall back to
// them automatically) — plus the HISTORY/METRICS sibling ops backed by the
// -history metric ring, so a federating supervisor can scrape windowed
// rates without Prometheus. With -debug-addr, the daemon binds an HTTP
// debug listener serving /metrics (Prometheus text for every wire call
// handled), /healthz, /debug/pprof/* and /debug/vars.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"blobcr/internal/blobseer"
	"blobcr/internal/cas"
	"blobcr/internal/chunkstore"
	"blobcr/internal/obs"
	"blobcr/internal/transport"
)

func main() {
	role := flag.String("role", "", "service role: vmanager | pmanager | meta | data")
	listen := flag.String("listen", "127.0.0.1:0", "listen address")
	pmanager := flag.String("pmanager", "", "provider manager address (data role)")
	dir := flag.String("dir", "", "data directory (data role; empty = in-memory)")
	storeKind := flag.String("store", "auto", "chunk store engine (data role): seglog | files | mem (auto = seglog with -dir, mem without)")
	advertise := flag.String("advertise", "", "address to register with the provider manager (default: the bound address)")
	debugAddr := flag.String("debug-addr", "", "HTTP debug listener: /metrics, /debug/pprof/*, /debug/vars (empty = off)")
	history := flag.Duration("history", time.Second, "metric history ring sample period backing the binary HISTORY op (0 = no ring)")
	flag.Parse()

	// Meter outbound wire calls (a data provider calls the provider manager
	// to register) into the default registry, scraped by -debug-addr. The
	// history ring lets the same registry answer windowed HISTORY queries.
	net := transport.WithMeter(transport.NewTCP(), nil, blobseer.VerbName)
	if *history > 0 {
		obs.Default.StartHistory(*history, 256)
	}
	if *debugAddr != "" {
		dbg, derr := obs.ServeDebug(*debugAddr, nil)
		if derr != nil {
			log.Fatalf("start debug listener: %v", derr)
		}
		defer dbg.Close()
		log.Printf("debug listener on http://%s (/metrics, /debug/pprof/)", dbg.Addr)
	}
	var srv transport.Server
	var err error

	switch *role {
	case "vmanager":
		srv, err = blobseer.NewVersionManager().Serve(net, *listen)
	case "pmanager":
		srv, err = blobseer.NewProviderManager().Serve(net, *listen)
	case "meta":
		srv, err = blobseer.NewMetadataProvider().Serve(net, *listen)
	case "data":
		backend, berr := blobseer.OpenStoreBackend(*storeKind, *dir)
		if berr != nil {
			log.Fatalf("open chunk store: %v", berr)
		}
		// Layer the content-addressed index over the engine so the provider
		// serves dedup commits; reopening a data directory re-indexes the
		// stored bodies to recover the index.
		store, serr := cas.NewStore(backend)
		if serr != nil {
			log.Fatalf("recover cas index: %v", serr)
		}
		log.Printf("chunk store engine: %s", chunkstore.StatsOf(store).Backend)
		defer store.Close() // flush and seal the engine (seglog syncs its active segment)
		srv, err = blobseer.NewDataProvider(store).Serve(net, *listen)
		if err == nil && *pmanager != "" {
			addr := *advertise
			if addr == "" {
				addr = srv.Addr()
			}
			client := &blobseer.Client{Net: net, PMAddr: *pmanager}
			if rerr := client.RegisterProvider(context.Background(), addr); rerr != nil {
				log.Fatalf("register with provider manager: %v", rerr)
			}
			log.Printf("registered %s with provider manager %s", addr, *pmanager)
		}
	default:
		fmt.Fprintln(os.Stderr, "blobseerd: -role must be vmanager, pmanager, meta or data")
		os.Exit(2)
	}
	if err != nil {
		log.Fatalf("start %s: %v", *role, err)
	}
	log.Printf("blobseer %s listening on %s", *role, srv.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	log.Printf("shutting down")
	srv.Close()
}
