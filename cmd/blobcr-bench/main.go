// Command blobcr-bench regenerates every table and figure of the paper's
// evaluation section (Figures 2-6, Table 1) plus the ablation studies, and
// prints them as aligned text tables.
//
// Usage:
//
//	blobcr-bench                # all paper experiments
//	blobcr-bench -ablations     # include the ablation studies
//	blobcr-bench -only fig2b
//	blobcr-bench -only disklog  # storage-engine commit bandwidth on a real disk
//	blobcr-bench -only health   # federated SLO alert detection latency
//	blobcr-bench -dir /mnt/ssd  # disk-backed: disklog + seglog-backed throughput
//	blobcr-bench -json out.json # also write machine-readable results
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"blobcr/internal/bench"
	"blobcr/internal/simcloud"
)

func main() {
	ablations := flag.Bool("ablations", false, "also run the ablation studies")
	only := flag.String("only", "", "run a single experiment (fig2a, fig2b, fig3a, fig3b, fig4, fig5a, fig5b, fig5c, table1, fig6, downtime, stages, tracepath, availability, throughput, disklog, repair, localtier, preemption, health)")
	dirFlag := flag.String("dir", "", "scratch directory for the disk-backed experiments (disklog, seglog-backed throughput); empty = a temp dir")
	jsonPath := flag.String("json", "", "also write the results as machine-readable JSON to this path")
	flag.Parse()

	p := simcloud.Default()
	c := simcloud.DefaultCM1()

	// The disk experiments need a real directory; default to a scratch temp
	// dir so `blobcr-bench -only disklog` works out of the box. The
	// throughput bench stays in-memory unless -dir is given explicitly.
	dir := *dirFlag
	if dir == "" {
		tmp, err := os.MkdirTemp("", "blobcr-bench-")
		if err != nil {
			fmt.Fprintln(os.Stderr, "blobcr-bench:", err)
			os.Exit(1)
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	}

	byName := map[string]func() bench.Series{
		"fig2a":        func() bench.Series { return bench.Fig2aCheckpoint50MB(p) },
		"fig2b":        func() bench.Series { return bench.Fig2bCheckpoint200MB(p) },
		"fig3a":        func() bench.Series { return bench.Fig3aRestart50MB(p) },
		"fig3b":        func() bench.Series { return bench.Fig3bRestart200MB(p) },
		"fig4":         func() bench.Series { return bench.Fig4SnapshotSize(p) },
		"fig5a":        func() bench.Series { return bench.Fig5aSuccessiveTime(p) },
		"fig5b":        func() bench.Series { return bench.Fig5bSuccessiveSpace(p) },
		"fig5c":        func() bench.Series { return bench.Fig5cSuccessiveDedup(p) },
		"table1":       func() bench.Series { return bench.Table1CM1SnapshotSize(p, c) },
		"fig6":         func() bench.Series { return bench.Fig6CM1Checkpoint(p, c) },
		"downtime":     func() bench.Series { return bench.FigDowntime() },
		"stages":       func() bench.Series { return bench.FigStages() },
		"tracepath":    func() bench.Series { return bench.FigTracePath() },
		"availability": func() bench.Series { return bench.FigAvailability() },
		"throughput":   func() bench.Series { return bench.FigThroughput(*dirFlag) },
		"disklog":      func() bench.Series { return bench.FigDiskLog(dir) },
		"repair":       func() bench.Series { return bench.FigRepair() },
		"localtier":    func() bench.Series { return bench.FigLocalTier() },
		"preemption":   func() bench.Series { return bench.FigPreemption() },
		"health":       func() bench.Series { return bench.FigHealth() },
	}

	// A functional experiment that cannot produce its numbers renders with a
	// FAILED title; exit nonzero so CI catches it instead of a human reading
	// tables. The downtime experiment also fails this way when the commit
	// pipeline's stage telemetry comes back empty from its METRICS scrape.
	failed := false
	var results []bench.Series
	render := func(s bench.Series) {
		s.Render(os.Stdout)
		results = append(results, s)
		if strings.Contains(s.Title, "FAILED") {
			failed = true
		}
	}
	// writeJSON emits everything rendered so far as the machine-readable
	// result document CI uploads as an artifact.
	writeJSON := func() {
		if *jsonPath == "" {
			return
		}
		f, err := os.Create(*jsonPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "blobcr-bench:", err)
			os.Exit(1)
		}
		params := map[string]float64{
			"nodes":          float64(p.Nodes),
			"meta_providers": float64(p.MetaProviders),
			"disk_bw_mb_s":   p.DiskBW / simcloud.MB,
			"net_bw_mb_s":    p.NetBW / simcloud.MB,
			"chunk_size_kb":  p.ChunkSize / 1024,
		}
		if err := bench.WriteJSON(f, params, results); err != nil {
			fmt.Fprintln(os.Stderr, "blobcr-bench:", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "blobcr-bench:", err)
			os.Exit(1)
		}
	}

	if *only != "" {
		gen, ok := byName[strings.ToLower(*only)]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *only)
			os.Exit(2)
		}
		render(gen())
		writeJSON()
		if failed {
			os.Exit(1)
		}
		return
	}

	fmt.Println("BlobCR evaluation reproduction (SC'11, Nicolae & Cappello)")
	fmt.Println("Testbed model: 120 compute nodes, 55 MB/s disks, 117.5 MB/s GbE, 256 KB stripes")
	fmt.Println()
	for _, s := range bench.All(p, c, *dirFlag) {
		render(s)
	}
	if *ablations {
		fmt.Println("Ablation studies")
		fmt.Println()
		for _, s := range bench.Ablations(p) {
			render(s)
		}
	}
	writeJSON()
	if failed {
		os.Exit(1)
	}
}
