package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"sort"
	"strings"
	"time"

	"blobcr/internal/health"
	"blobcr/internal/obs"
	"blobcr/internal/transport"
)

// topRefresh is the dashboard redraw period.
const topRefresh = 2 * time.Second

// topWindow is the trailing window every rate and quantile on the dashboard
// is computed over, via the supervisor's HISTORY verb.
const topWindow = time.Minute

// topQuery renders the live cluster dashboard off a federating supervisor's
// introspection endpoint. Everything on screen comes from that one endpoint:
// the METRICS exposition of the cluster registry (per-node backlog gauges,
// liveness, active alerts), the HISTORY verb's windowed view of the same
// registry (per-node suspend p99 and commit throughput over the last
// minute), and the HEALTH verb's one-word verdict. No per-node connections
// are opened — federation already moved the fleet's series here.
func topQuery(addr string, timeout time.Duration, once bool) {
	net := transport.NewTCP()
	for {
		frame := renderTopFrame(net, addr, timeout)
		if !once {
			fmt.Print("\033[H\033[2J") // clear screen between refreshes
		}
		os.Stdout.WriteString(frame)
		if once {
			return
		}
		time.Sleep(topRefresh)
	}
}

// renderTopFrame collects one dashboard frame's data and renders it.
func renderTopFrame(net transport.Network, addr string, timeout time.Duration) string {
	ctx := context.Background()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	body, err := transport.ScrapeExposition(ctx, net, addr)
	if err != nil {
		log.Fatalf("top: %v", err)
	}
	points, err := obs.ParseProm(body)
	if err != nil {
		log.Fatalf("top: parse exposition: %v", err)
	}
	// The windowed view and the health verdict are best-effort: a supervisor
	// running without Config.Health still renders the liveness table.
	var rep obs.WindowReport
	if r, err := transport.HistoryWindow(ctx, net, addr, topWindow); err == nil {
		rep = r
	}
	verdict := topHealthVerdict(ctx, net, addr)

	var b strings.Builder
	renderTop(&b, addr, points, rep, verdict)
	return b.String()
}

// topHealthVerdict asks the HEALTH verb for the one-line cluster verdict
// ("OK" or "DEGRADED <alerts>"); empty when the endpoint has no health plane.
func topHealthVerdict(ctx context.Context, net transport.Network, addr string) string {
	resp, err := net.Call(ctx, addr, []byte("HEALTH"))
	if err != nil {
		return ""
	}
	s := string(resp)
	if !strings.HasPrefix(s, "OK") {
		return ""
	}
	if _, body, found := strings.Cut(s, "\n"); found {
		return strings.TrimSpace(body)
	}
	return ""
}

// topRow is one node's line of the dashboard table.
type topRow struct {
	node    string
	up      bool
	p99ms   string // suspend p99 over the window
	backlog string // staged bytes not yet globally durable
	commit  string // commit MB/s over the window (wire bytes)
	alerts  string // firing alert names scoped to this node
}

// renderTop renders one frame: the cluster headline, the per-node table, and
// the firing alerts with their rules.
func renderTop(b *strings.Builder, addr string, points []obs.Point, rep obs.WindowReport, verdict string) {
	now := time.Now().Format("15:04:05")
	rounds := uint64(0)
	if p := obs.Find(points, "federation_rounds_total"); p != nil {
		rounds = p.Value
	}
	fmt.Fprintf(b, "blobcr top — %s at %s  (federation round %d, window %ds",
		addr, now, rounds, int(topWindow.Seconds()))
	if rep.Samples > 0 {
		fmt.Fprintf(b, ", %d samples", rep.Samples)
	}
	b.WriteString(")\n")
	switch {
	case verdict == "" || verdict == "OK":
		status := "HEALTHY"
		if verdict == "" {
			status = "no health plane (supervisor runs without Config.Health)"
		}
		fmt.Fprintf(b, "cluster: %s\n", status)
	default:
		fmt.Fprintf(b, "cluster: %s\n", verdict)
	}

	rows := topRows(points, rep)
	if len(rows) == 0 {
		b.WriteString("\nno federated nodes yet (first scrape round pending)\n")
		return
	}
	fmt.Fprintf(b, "\n%-12s %-5s %12s %22s %12s  %s\n",
		"NODE", "UP", "SUSPEND-P99", "BACKLOG", "COMMIT-MB/S", "ALERTS")
	for _, r := range rows {
		up := "yes"
		if !r.up {
			up = "NO"
		}
		fmt.Fprintf(b, "%-12s %-5s %12s %22s %12s  %s\n",
			r.node, up, r.p99ms, r.backlog, r.commit, r.alerts)
	}

	// Cluster-scoped alerts (no node entity) don't fit a table row.
	var global []string
	for i := range points {
		p := &points[i]
		if p.Name == "health_alert_active" && p.Kind == obs.KindGauge &&
			p.GaugeValue == 1 && p.Label(health.NodeLabel) == "" {
			global = append(global, p.Label("alert"))
		}
	}
	if len(global) > 0 {
		sort.Strings(global)
		fmt.Fprintf(b, "\ncluster alerts firing: %s\n", strings.Join(global, " "))
	}
}

// topRows builds the per-node table from the federated exposition (liveness,
// backlog gauges, per-node alerts) and the windowed report (suspend p99,
// commit throughput).
func topRows(points []obs.Point, rep obs.WindowReport) []topRow {
	// The node set is whatever federation has filed liveness for.
	up := map[string]bool{}
	for i := range points {
		p := &points[i]
		if p.Name == "federation_node_up" && p.Kind == obs.KindGauge {
			if n := p.Label(health.NodeLabel); n != "" {
				up[n] = p.GaugeValue == 1
			}
		}
	}
	nodes := make([]string, 0, len(up))
	for n := range up {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)

	rows := make([]topRow, 0, len(nodes))
	for _, node := range nodes {
		r := topRow{node: node, up: up[node], p99ms: "-", backlog: "-", commit: "-"}
		nl := obs.L(health.NodeLabel, node)
		if st := rep.Find("proxy_suspend_ns", nl); st != nil && st.Count > 0 {
			r.p99ms = fmt.Sprintf("%.2f ms", st.P99/1e6)
		}
		if p := obs.Find(points, "supervisor_drain_backlog_bytes", nl); p != nil {
			r.backlog = fmtBytes(p.GaugeValue)
			if c := obs.Find(points, "supervisor_drain_backlog_chunks", nl); c != nil && c.GaugeValue > 0 {
				r.backlog += fmt.Sprintf(" (%d ch)", c.GaugeValue)
			}
		}
		if st := rep.Find("blobseer_commit_transfer_bytes_total", nl); st != nil {
			r.commit = fmt.Sprintf("%.2f", st.Rate/1e6)
		}
		var firing []string
		for i := range points {
			p := &points[i]
			if p.Name == "health_alert_active" && p.Kind == obs.KindGauge &&
				p.GaugeValue == 1 && p.Label(health.NodeLabel) == node {
				firing = append(firing, p.Label("alert"))
			}
		}
		sort.Strings(firing)
		r.alerts = strings.Join(firing, " ")
		rows = append(rows, r)
	}
	return rows
}

// fmtBytes renders a byte gauge human-readably.
func fmtBytes(v int64) string {
	switch {
	case v >= 1<<30:
		return fmt.Sprintf("%.2f GiB", float64(v)/(1<<30))
	case v >= 1<<20:
		return fmt.Sprintf("%.2f MiB", float64(v)/(1<<20))
	case v >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(v)/(1<<10))
	default:
		return fmt.Sprintf("%d B", v)
	}
}
