package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"blobcr/internal/blobseer"
	"blobcr/internal/obs"
	"blobcr/internal/transport"
)

// traceQuery collects one distributed trace's spans from a set of endpoints
// and renders the assembled cross-process tree plus its critical path. Each
// address is tried over the text TRACE verb first (proxies, supervisors,
// repair daemons) and falls back to the binary sibling (blobseer services,
// whose protocol is length-prefixed binary). Endpoints that hold no spans
// for the trace simply contribute nothing — a trace rarely touches every
// service.
func traceQuery(addrList, traceHex string, timeout time.Duration) {
	trace, err := strconv.ParseUint(strings.TrimPrefix(traceHex, "0x"), 16, 64)
	if err != nil || trace == 0 {
		log.Fatalf("trace: bad trace id %q (expect the hex id BeginTrace issued)", traceHex)
	}
	ctx := context.Background()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	net := transport.NewTCP()
	cl := &blobseer.Client{Net: net}
	sets := make(map[string][]obs.SpanRecord)
	for _, addr := range strings.Split(addrList, ",") {
		addr = strings.TrimSpace(addr)
		if addr == "" {
			continue
		}
		spans, err := transport.TraceSpansText(ctx, net, addr, trace)
		if err != nil {
			if spans, err = cl.RemoteTrace(ctx, addr, trace); err != nil {
				fmt.Fprintf(os.Stderr, "trace: %s unreachable over both TRACE verbs: %v\n", addr, err)
				continue
			}
		}
		sets[addr] = spans
	}
	at := obs.AssembleTrace(trace, sets)
	if at.Root == nil {
		log.Fatalf("trace %x: no spans found at the given endpoints (evicted, or wrong endpoints?)", trace)
	}
	fmt.Printf("trace %x: %d spans from %d endpoints", trace, at.Spans, len(sets))
	if len(at.Orphans) > 0 {
		fmt.Printf(" (+%d orphaned spans whose parents were not collected)", len(at.Orphans))
	}
	fmt.Println()
	printSpanTree(at.Root, at.Root.Start, 0)

	segs := obs.CriticalPath(at.Root)
	wall := at.Root.End.Sub(at.Root.Start)
	attributed := obs.PathAttributed(at.Root, segs)
	fmt.Printf("\ncritical path (%d segments, %.1f%% of %.3f ms wall attributed)\n",
		len(segs), 100*coverage(attributed, wall), msF(wall))
	for _, seg := range segs {
		fmt.Printf("  +%9.3f ms  %9.3f ms  %s (%s)\n",
			msF(seg.Start.Sub(at.Root.Start)), msF(seg.Duration()), seg.Node.Name, seg.Node.Process)
	}
}

// printSpanTree renders one assembled span and its children, indented by
// depth, with offsets relative to the root's start.
func printSpanTree(n *obs.SpanNode, origin time.Time, depth int) {
	fmt.Printf("  +%9.3f ms  %9.3f ms  %s%s (%s)\n",
		msF(n.Start.Sub(origin)), msF(n.End.Sub(n.Start)), strings.Repeat("  ", depth), n.Name, n.Process)
	for _, c := range n.Children {
		printSpanTree(c, origin, depth+1)
	}
}

// flightQuery dumps a flight-recorder ring: the endpoint's own (bare
// FLIGHT — any proxy, supervisor, repair daemon or, over the binary
// sibling, blobseer service) or, with a node argument against a supervisor,
// the mirrored post-mortem dump of that node (FLIGHT <node>).
func flightQuery(addr, node string, timeout time.Duration) {
	ctx := context.Background()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	net := transport.NewTCP()
	var spans []obs.SpanRecord
	var err error
	final := false
	if node == "" {
		if spans, err = transport.FlightSpansText(ctx, net, addr); err != nil {
			cl := &blobseer.Client{Net: net}
			if spans, err = cl.RemoteFlight(ctx, addr); err != nil {
				log.Fatalf("flight: %s unreachable over both FLIGHT verbs: %v", addr, err)
			}
		}
	} else {
		resp, cerr := net.Call(ctx, addr, []byte("FLIGHT "+node))
		if cerr != nil {
			log.Fatalf("flight: %v", cerr)
		}
		head, body, _ := strings.Cut(string(resp), "\n")
		fields := strings.Fields(head)
		if len(fields) < 2 || fields[0] != "OK" {
			log.Fatalf("flight: %s", strings.TrimSpace(head))
		}
		final = len(fields) > 2 && fields[2] == "FINAL"
		if spans, err = obs.ParseSpans([]byte(body)); err != nil {
			log.Fatalf("flight: %v", err)
		}
	}
	what := addr
	if node != "" {
		what = node + " (mirrored by " + addr + ")"
		if final {
			what += " — FINAL post-mortem dump"
		}
	}
	fmt.Printf("flight recorder of %s: %d spans, oldest first\n", what, len(spans))
	if len(spans) == 0 {
		return
	}
	origin := spans[0].Start
	for _, s := range spans {
		line := fmt.Sprintf("  +%12.3f ms  %9.3f ms  %s", msF(s.Start.Sub(origin)), msF(s.Duration()), s.Name)
		if s.Trace != 0 {
			line += fmt.Sprintf("  trace=%x", s.Trace)
		}
		fmt.Println(line)
	}
}

func msF(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

func coverage(attributed, wall time.Duration) float64 {
	if wall <= 0 {
		return 0
	}
	return float64(attributed) / float64(wall)
}
