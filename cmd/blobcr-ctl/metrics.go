package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"sort"
	"time"

	"blobcr/internal/obs"
	"blobcr/internal/transport"
)

// watchWindow is the trailing window -watch asks the endpoint's history
// ring about. Wider than the redraw period, so rates are smoothed over
// several ring samples rather than jittering scrape-to-scrape.
const watchWindow = 10 * time.Second

// metricsQuery scrapes a METRICS endpoint (checkpointing proxy, supervisor
// or repair daemon — they all speak the same verb) and renders the telemetry
// an operator reaches for first: the last commit's suspend window decomposed
// into the five pipeline stages, per-provider wire latency, and the dedup
// hit-rate. With watch, it re-scrapes every two seconds and annotates every
// counter with its per-second rate. Rates come from the endpoint's own
// history ring when it keeps one (the HISTORY verb: delta-exact, computed
// over the ring's sample timestamps); endpoints without a ring fall back to
// client-side scrape deltas. Gauges and histograms stay absolute: a gauge
// already is the current value.
func metricsQuery(addr string, timeout time.Duration, watch bool) {
	net := transport.NewTCP()
	var prev map[string]uint64
	var prevAt time.Time
	for {
		points := scrapeMetrics(net, addr, timeout)
		now := time.Now()
		var rates map[string]float64
		rateSrc := ""
		if watch {
			if r, ok := historyRates(net, addr, timeout); ok {
				rates = r
				rateSrc = fmt.Sprintf("server-side history, %ds window", int(watchWindow.Seconds()))
			} else if prev != nil {
				rates = counterRates(points, prev, now.Sub(prevAt))
				rateSrc = "client-side scrape deltas (no history ring at endpoint)"
			}
		}
		prev, prevAt = counterValues(points), now
		if watch {
			fmt.Print("\033[H\033[2J") // clear screen between refreshes
		}
		fmt.Printf("metrics from %s at %s\n", addr, now.Format("15:04:05"))
		if rateSrc != "" {
			fmt.Printf("counter rates: %s\n", rateSrc)
		}
		renderMetrics(os.Stdout, points, rates)
		if !watch {
			return
		}
		time.Sleep(2 * time.Second)
	}
}

// scrapeMetrics collects the full (possibly chunked) exposition from addr
// and parses it.
func scrapeMetrics(net transport.Network, addr string, timeout time.Duration) []obs.Point {
	ctx := context.Background()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	body, err := transport.ScrapeExposition(ctx, net, addr)
	if err != nil {
		log.Fatalf("metrics: %v", err)
	}
	points, err := obs.ParseProm(body)
	if err != nil {
		log.Fatalf("metrics: parse exposition: %v", err)
	}
	return points
}

// historyRates asks the endpoint's history ring for windowed counter rates.
// ok is false when the endpoint has no ring (HISTORY answers ERR) or the
// ring holds fewer than two samples — the callers fall back to scrape
// deltas rather than rendering no rates at all.
func historyRates(net transport.Network, addr string, timeout time.Duration) (map[string]float64, bool) {
	ctx := context.Background()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	rep, err := transport.HistoryWindow(ctx, net, addr, watchWindow)
	if err != nil || rep.Samples < 2 {
		return nil, false
	}
	out := make(map[string]float64)
	for i := range rep.Stats {
		st := &rep.Stats[i]
		if st.Kind != obs.KindCounter {
			continue
		}
		key := st.Name
		for _, l := range st.Labels {
			key += ";" + l.Key + "=" + l.Value
		}
		out[key] = st.Rate
	}
	return out, true
}

// seriesKey identifies one series across scrapes: the metric name plus its
// label pairs as rendered (labels are in a stable order in the exposition).
func seriesKey(p *obs.Point) string {
	key := p.Name
	for _, l := range p.Labels {
		key += ";" + l.Key + "=" + l.Value
	}
	return key
}

// counterValues snapshots every counter of one scrape, keyed by series.
func counterValues(points []obs.Point) map[string]uint64 {
	out := make(map[string]uint64)
	for i := range points {
		if points[i].Kind == obs.KindCounter {
			out[seriesKey(&points[i])] = points[i].Value
		}
	}
	return out
}

// counterRates derives per-second rates for the counters present in both
// scrapes. A counter that went backward (the endpoint restarted) contributes
// no rate rather than a negative one.
func counterRates(points []obs.Point, prev map[string]uint64, dt time.Duration) map[string]float64 {
	if dt <= 0 {
		return nil
	}
	out := make(map[string]float64)
	for i := range points {
		p := &points[i]
		if p.Kind != obs.KindCounter {
			continue
		}
		before, ok := prev[seriesKey(p)]
		if !ok || p.Value < before {
			continue
		}
		out[seriesKey(p)] = float64(p.Value-before) / dt.Seconds()
	}
	return out
}

func ms(ns float64) float64 { return ns / 1e6 }

// renderMetrics prints the operator-facing summary sections, then every
// remaining counter and gauge so nothing recorded is invisible. rates, when
// non-nil (watch mode past the first scrape), annotates counters with their
// per-second rate.
func renderMetrics(w *os.File, points []obs.Point, rates map[string]float64) {
	covered := map[string]bool{}

	// Commit pipeline: the five stages of the last commit plus their
	// distribution across all commits seen by this endpoint.
	var stageRows []string
	var totalLast float64
	for _, stage := range obs.CommitStages {
		h := obs.Find(points, "span_ns", obs.L("span", stage))
		g := obs.Find(points, "span_last_ns", obs.L("span", stage))
		if h == nil || h.Count == 0 {
			continue
		}
		last := 0.0
		if g != nil {
			last = float64(g.GaugeValue)
		}
		totalLast += last
		stageRows = append(stageRows, fmt.Sprintf("  %-16s %8d %10.2f %10.2f %10.2f",
			stage, h.Count, ms(last), ms(h.Mean()), ms(h.Quantile(0.99))))
	}
	covered["span_ns"], covered["span_last_ns"] = true, true
	if len(stageRows) > 0 {
		fmt.Fprintf(w, "\ncommit pipeline (per stage)\n")
		fmt.Fprintf(w, "  %-16s %8s %10s %10s %10s\n", "STAGE", "COUNT", "LAST-MS", "MEAN-MS", "P99-MS")
		for _, r := range stageRows {
			fmt.Fprintln(w, r)
		}
		fmt.Fprintf(w, "  %-16s %8s %10.2f\n", "total", "", ms(totalLast))
	}

	// Suspend window: what the guest actually observed.
	if h := obs.Find(points, "proxy_suspend_ns"); h != nil && h.Count > 0 {
		last := 0.0
		if g := obs.Find(points, "proxy_suspend_last_ns"); g != nil {
			last = float64(g.GaugeValue)
		}
		fmt.Fprintf(w, "\nsuspend window: last %.2f ms, mean %.2f ms, p99 %.2f ms over %d checkpoints\n",
			ms(last), ms(h.Mean()), ms(h.Quantile(0.99)), h.Count)
		covered["proxy_suspend_ns"], covered["proxy_suspend_last_ns"] = true, true
	}

	// Dedup: bytes the content-addressed repository kept off the wire.
	if logical := obs.Find(points, "blobseer_commit_logical_bytes_total"); logical != nil && logical.Value > 0 {
		var hit uint64
		if p := obs.Find(points, "blobseer_dedup_hit_bytes_total"); p != nil {
			hit = p.Value
		}
		fmt.Fprintf(w, "\ndedup: %.1f%% hit-rate by bytes (%d of %d logical bytes never shipped)\n",
			100*float64(hit)/float64(logical.Value), hit, logical.Value)
	}

	// Per-provider wire latency: where the commit's time went on the network.
	var addrRows []string
	for i := range points {
		p := &points[i]
		if p.Name != "transport_addr_call_ns" || p.Count == 0 {
			continue
		}
		addrRows = append(addrRows, fmt.Sprintf("  %-24s %8d %10.1f %10.1f",
			p.Label("addr"), p.Count, p.Mean()/1e3, p.Quantile(0.99)/1e3))
	}
	covered["transport_addr_call_ns"] = true
	if len(addrRows) > 0 {
		fmt.Fprintf(w, "\nwire latency per address\n")
		fmt.Fprintf(w, "  %-24s %8s %10s %10s\n", "ADDRESS", "CALLS", "MEAN-US", "P99-US")
		sort.Strings(addrRows)
		for _, r := range addrRows {
			fmt.Fprintln(w, r)
		}
	}

	// Everything else, compactly: counters and gauges by name, remaining
	// histograms as count/mean/p99.
	var rest []string
	for i := range points {
		p := &points[i]
		if covered[p.Name] {
			continue
		}
		label := p.Name
		for _, l := range p.Labels {
			label += fmt.Sprintf(" %s=%s", l.Key, l.Value)
		}
		switch p.Kind {
		case obs.KindCounter:
			line := fmt.Sprintf("  %-48s %d", label, p.Value)
			if r, ok := rates[seriesKey(p)]; ok {
				line += fmt.Sprintf("  (%.1f/s)", r)
			}
			rest = append(rest, line)
		case obs.KindGauge:
			rest = append(rest, fmt.Sprintf("  %-48s %d", label, p.GaugeValue))
		case obs.KindHistogram:
			if p.Count > 0 {
				rest = append(rest, fmt.Sprintf("  %-48s count=%d mean=%.0f p99=%.0f",
					label, p.Count, p.Mean(), p.Quantile(0.99)))
			}
		}
	}
	if len(rest) > 0 {
		fmt.Fprintf(w, "\nall other series\n")
		for _, r := range rest {
			fmt.Fprintln(w, r)
		}
	}
}
