package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"sort"
	"time"

	"blobcr/internal/obs"
	"blobcr/internal/transport"
)

// metricsQuery scrapes a METRICS endpoint (checkpointing proxy, supervisor
// or repair daemon — they all speak the same verb) and renders the telemetry
// an operator reaches for first: the last commit's suspend window decomposed
// into the five pipeline stages, per-provider wire latency, and the dedup
// hit-rate. With watch, it re-scrapes every two seconds and annotates every
// counter with its per-second rate computed from the scrape deltas — the
// live view of how fast the deployment is moving. Gauges and histograms stay
// absolute: a gauge already is the current value.
func metricsQuery(addr string, timeout time.Duration, watch bool) {
	var prev map[string]uint64
	var prevAt time.Time
	for {
		points := scrapeMetrics(addr, timeout)
		now := time.Now()
		var rates map[string]float64
		if prev != nil {
			rates = counterRates(points, prev, now.Sub(prevAt))
		}
		prev, prevAt = counterValues(points), now
		if watch {
			fmt.Print("\033[H\033[2J") // clear screen between refreshes
		}
		fmt.Printf("metrics from %s at %s\n", addr, now.Format("15:04:05"))
		renderMetrics(os.Stdout, points, rates)
		if !watch {
			return
		}
		time.Sleep(2 * time.Second)
	}
}

// scrapeMetrics collects the full (possibly chunked) exposition from addr
// and parses it.
func scrapeMetrics(addr string, timeout time.Duration) []obs.Point {
	ctx := context.Background()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	body, err := transport.ScrapeExposition(ctx, transport.NewTCP(), addr)
	if err != nil {
		log.Fatalf("metrics: %v", err)
	}
	points, err := obs.ParseProm(body)
	if err != nil {
		log.Fatalf("metrics: parse exposition: %v", err)
	}
	return points
}

// seriesKey identifies one series across scrapes: the metric name plus its
// label pairs as rendered (labels are in a stable order in the exposition).
func seriesKey(p *obs.Point) string {
	key := p.Name
	for _, l := range p.Labels {
		key += ";" + l.Key + "=" + l.Value
	}
	return key
}

// counterValues snapshots every counter of one scrape, keyed by series.
func counterValues(points []obs.Point) map[string]uint64 {
	out := make(map[string]uint64)
	for i := range points {
		if points[i].Kind == obs.KindCounter {
			out[seriesKey(&points[i])] = points[i].Value
		}
	}
	return out
}

// counterRates derives per-second rates for the counters present in both
// scrapes. A counter that went backward (the endpoint restarted) contributes
// no rate rather than a negative one.
func counterRates(points []obs.Point, prev map[string]uint64, dt time.Duration) map[string]float64 {
	if dt <= 0 {
		return nil
	}
	out := make(map[string]float64)
	for i := range points {
		p := &points[i]
		if p.Kind != obs.KindCounter {
			continue
		}
		before, ok := prev[seriesKey(p)]
		if !ok || p.Value < before {
			continue
		}
		out[seriesKey(p)] = float64(p.Value-before) / dt.Seconds()
	}
	return out
}

func ms(ns float64) float64 { return ns / 1e6 }

// renderMetrics prints the operator-facing summary sections, then every
// remaining counter and gauge so nothing recorded is invisible. rates, when
// non-nil (watch mode past the first scrape), annotates counters with their
// per-second rate.
func renderMetrics(w *os.File, points []obs.Point, rates map[string]float64) {
	covered := map[string]bool{}

	// Commit pipeline: the five stages of the last commit plus their
	// distribution across all commits seen by this endpoint.
	var stageRows []string
	var totalLast float64
	for _, stage := range obs.CommitStages {
		h := obs.Find(points, "span_ns", obs.L("span", stage))
		g := obs.Find(points, "span_last_ns", obs.L("span", stage))
		if h == nil || h.Count == 0 {
			continue
		}
		last := 0.0
		if g != nil {
			last = float64(g.GaugeValue)
		}
		totalLast += last
		stageRows = append(stageRows, fmt.Sprintf("  %-16s %8d %10.2f %10.2f %10.2f",
			stage, h.Count, ms(last), ms(h.Mean()), ms(h.Quantile(0.99))))
	}
	covered["span_ns"], covered["span_last_ns"] = true, true
	if len(stageRows) > 0 {
		fmt.Fprintf(w, "\ncommit pipeline (per stage)\n")
		fmt.Fprintf(w, "  %-16s %8s %10s %10s %10s\n", "STAGE", "COUNT", "LAST-MS", "MEAN-MS", "P99-MS")
		for _, r := range stageRows {
			fmt.Fprintln(w, r)
		}
		fmt.Fprintf(w, "  %-16s %8s %10.2f\n", "total", "", ms(totalLast))
	}

	// Suspend window: what the guest actually observed.
	if h := obs.Find(points, "proxy_suspend_ns"); h != nil && h.Count > 0 {
		last := 0.0
		if g := obs.Find(points, "proxy_suspend_last_ns"); g != nil {
			last = float64(g.GaugeValue)
		}
		fmt.Fprintf(w, "\nsuspend window: last %.2f ms, mean %.2f ms, p99 %.2f ms over %d checkpoints\n",
			ms(last), ms(h.Mean()), ms(h.Quantile(0.99)), h.Count)
		covered["proxy_suspend_ns"], covered["proxy_suspend_last_ns"] = true, true
	}

	// Dedup: bytes the content-addressed repository kept off the wire.
	if logical := obs.Find(points, "blobseer_commit_logical_bytes_total"); logical != nil && logical.Value > 0 {
		var hit uint64
		if p := obs.Find(points, "blobseer_dedup_hit_bytes_total"); p != nil {
			hit = p.Value
		}
		fmt.Fprintf(w, "\ndedup: %.1f%% hit-rate by bytes (%d of %d logical bytes never shipped)\n",
			100*float64(hit)/float64(logical.Value), hit, logical.Value)
	}

	// Per-provider wire latency: where the commit's time went on the network.
	var addrRows []string
	for i := range points {
		p := &points[i]
		if p.Name != "transport_addr_call_ns" || p.Count == 0 {
			continue
		}
		addrRows = append(addrRows, fmt.Sprintf("  %-24s %8d %10.1f %10.1f",
			p.Label("addr"), p.Count, p.Mean()/1e3, p.Quantile(0.99)/1e3))
	}
	covered["transport_addr_call_ns"] = true
	if len(addrRows) > 0 {
		fmt.Fprintf(w, "\nwire latency per address\n")
		fmt.Fprintf(w, "  %-24s %8s %10s %10s\n", "ADDRESS", "CALLS", "MEAN-US", "P99-US")
		sort.Strings(addrRows)
		for _, r := range addrRows {
			fmt.Fprintln(w, r)
		}
	}

	// Everything else, compactly: counters and gauges by name, remaining
	// histograms as count/mean/p99.
	var rest []string
	for i := range points {
		p := &points[i]
		if covered[p.Name] {
			continue
		}
		label := p.Name
		for _, l := range p.Labels {
			label += fmt.Sprintf(" %s=%s", l.Key, l.Value)
		}
		switch p.Kind {
		case obs.KindCounter:
			line := fmt.Sprintf("  %-48s %d", label, p.Value)
			if r, ok := rates[seriesKey(p)]; ok {
				line += fmt.Sprintf("  (%.1f/s)", r)
			}
			rest = append(rest, line)
		case obs.KindGauge:
			rest = append(rest, fmt.Sprintf("  %-48s %d", label, p.GaugeValue))
		case obs.KindHistogram:
			if p.Count > 0 {
				rest = append(rest, fmt.Sprintf("  %-48s count=%d mean=%.0f p99=%.0f",
					label, p.Count, p.Mean(), p.Quantile(0.99)))
			}
		}
	}
	if len(rest) > 0 {
		fmt.Fprintf(w, "\nall other series\n")
		for _, r := range rest {
			fmt.Fprintln(w, r)
		}
	}
}
