// Command blobcr-ctl is the cloud client's tool for manipulating disk
// images in the checkpoint repository: upload and download images, list
// blobs and versions, clone images, inspect the file system inside a
// snapshot (the paper's standalone-checkpoint-inspection scenario), and
// report the content-addressed repository's deduplication counters.
//
//	blobcr-ctl -vmanager ... -pmanager ... -meta ... [-timeout 30s] upload base.raw
//	blobcr-ctl ... list
//	blobcr-ctl ... download <blob> <version> out.raw
//	blobcr-ctl ... clone    <blob> <version>
//	blobcr-ctl ... inspect  <blob> <version> [path]
//	blobcr-ctl ... stats
//	blobcr-ctl ... providers
//	blobcr-ctl ... [-replication N] scrub
//	blobcr-ctl ... [-replication N] repair
//	blobcr-ctl ... decommission <provider-addr>
//	blobcr-ctl -supervisor ADDR events [since-seq]
//	blobcr-ctl -supervisor ADDR status
//	blobcr-ctl preempt <proxy-addr>
//	blobcr-ctl [-watch] metrics <addr>
//	blobcr-ctl [-once] top <supervisor-addr>
//	blobcr-ctl trace <addr>[,addr...] <trace-hex>
//	blobcr-ctl flight <addr> [node]
//	blobcr-ctl store <data-provider-addr> [compact]
//	blobcr-ctl supervise
//
// With -dedup, uploads go through the content-addressed repository
// (internal/cas): chunk bodies the repository already holds are neither
// stored again nor shipped over the network.
//
// With -timeout, every repository operation runs under a context deadline:
// a hung daemon fails the command fast instead of blocking forever.
//
// The events and status commands stream a running supervisor's structured
// event log and recovery accounting from its introspection endpoint
// (supervisor.Serve). supervise runs a self-contained demonstration: an
// in-process cloud under the autonomous supervisor rides out a two-node
// failure storm, printing every event — failure detection, rollback
// planning to the durability watermark, self-healing partial restarts —
// and the final MTTR summary.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"blobcr/internal/blobseer"
	"blobcr/internal/cloud"
	"blobcr/internal/guestfs"
	"blobcr/internal/mirror"
	"blobcr/internal/proxy"
	"blobcr/internal/repair"
	"blobcr/internal/supervisor"
	"blobcr/internal/transport"
	"blobcr/internal/vm"
)

const defaultChunkSize = 256 * 1024

func main() {
	vmAddr := flag.String("vmanager", "", "version manager address")
	pmAddr := flag.String("pmanager", "", "provider manager address")
	meta := flag.String("meta", "", "comma-separated metadata provider addresses")
	chunk := flag.Uint64("chunk", defaultChunkSize, "chunk size for uploads")
	dedup := flag.Bool("dedup", false, "write through the content-addressed repository (dedup commits)")
	replication := flag.Int("replication", 0, "chunk replica count; the scrub/repair target factor (0 = 1)")
	parallel := flag.Int("parallel", 0, "concurrent per-provider streams for uploads/downloads (0 = client default)")
	timeout := flag.Duration("timeout", 0, "deadline for repository operations (0 = none); hung daemons fail fast")
	supAddr := flag.String("supervisor", "", "supervisor introspection endpoint (for events/status)")
	watch := flag.Bool("watch", false, "metrics: re-scrape and redraw every two seconds")
	once := flag.Bool("once", false, "top: render a single frame and exit instead of refreshing")
	flag.Parse()

	if flag.NArg() < 1 {
		usage()
	}
	switch flag.Arg(0) {
	case "supervise":
		superviseDemo()
		return
	case "events", "status":
		if *supAddr == "" {
			fmt.Fprintln(os.Stderr, "blobcr-ctl: -supervisor is required for", flag.Arg(0))
			os.Exit(2)
		}
		supervisorQuery(*supAddr, *timeout, flag.Args())
		return
	case "metrics":
		need(flag.Args(), 2)
		metricsQuery(flag.Arg(1), *timeout, *watch)
		return
	case "top":
		need(flag.Args(), 2)
		topQuery(flag.Arg(1), *timeout, *once)
		return
	case "trace":
		need(flag.Args(), 3)
		traceQuery(flag.Arg(1), flag.Arg(2), *timeout)
		return
	case "flight":
		need(flag.Args(), 2)
		flightQuery(flag.Arg(1), flag.Arg(2), *timeout)
		return
	case "store":
		need(flag.Args(), 2)
		storeQuery(flag.Arg(1), *timeout, flag.Args())
		return
	case "preempt":
		need(flag.Args(), 2)
		preemptQuery(flag.Arg(1), *timeout)
		return
	}
	if *vmAddr == "" || *pmAddr == "" || *meta == "" {
		fmt.Fprintln(os.Stderr, "blobcr-ctl: -vmanager, -pmanager and -meta are required")
		os.Exit(2)
	}
	client := &blobseer.Client{
		Net:         transport.NewTCP(),
		VMAddr:      *vmAddr,
		PMAddr:      *pmAddr,
		MetaAddrs:   strings.Split(*meta, ","),
		Dedup:       *dedup,
		Replication: *replication,
		Parallelism: *parallel,
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	args := flag.Args()
	switch args[0] {
	case "upload":
		need(args, 2)
		raw, err := os.ReadFile(args[1])
		if err != nil {
			log.Fatal(err)
		}
		blob, err := client.CreateBlob(ctx, *chunk)
		if err != nil {
			log.Fatal(err)
		}
		info, err := client.WriteAt(ctx, blob, 0, raw)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("uploaded %s: blob=%d version=%d size=%d\n", args[1], blob, info.Version, info.Size)

	case "list":
		blobs, err := client.ListBlobs(ctx)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s %-12s %-10s %s\n", "BLOB", "CHUNKSIZE", "VERSIONS", "LATEST-SIZE")
		for _, b := range blobs {
			size := "-"
			if b.Versions > 0 {
				if info, _, err := client.Latest(ctx, b.ID); err == nil {
					size = strconv.FormatUint(info.Size, 10)
				}
			}
			fmt.Printf("%-8d %-12d %-10d %s\n", b.ID, b.ChunkSize, b.Versions, size)
		}

	case "download":
		need(args, 4)
		ref := blobseer.SnapshotRef{Blob: parseU64(args[1]), Version: parseU64(args[2])}
		info, _, err := client.GetVersion(ctx, ref)
		if err != nil {
			log.Fatal(err)
		}
		data, err := client.ReadVersion(ctx, ref, 0, info.Size)
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(args[3], data, 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("downloaded %s (%d bytes) to %s\n", ref, len(data), args[3])

	case "clone":
		need(args, 3)
		ref := blobseer.SnapshotRef{Blob: parseU64(args[1]), Version: parseU64(args[2])}
		id, err := client.Clone(ctx, ref)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("cloned %s -> blob=%d\n", ref, id)

	case "inspect":
		need(args, 3)
		ref := blobseer.SnapshotRef{Blob: parseU64(args[1]), Version: parseU64(args[2])}
		mod, err := mirror.Attach(ctx, client, ref)
		if err != nil {
			log.Fatal(err)
		}
		fs, err := guestfs.Mount(mod)
		if err != nil {
			log.Fatalf("snapshot does not hold a guest file system: %v", err)
		}
		path := "/"
		if len(args) > 3 {
			path = args[3]
		}
		info, err := fs.Stat(path)
		if err != nil {
			log.Fatal(err)
		}
		if !info.IsDir {
			data, err := fs.ReadFile(path)
			if err != nil {
				log.Fatal(err)
			}
			os.Stdout.Write(data)
			return
		}
		entries, err := fs.ReadDir(path)
		if err != nil {
			log.Fatal(err)
		}
		for _, e := range entries {
			kind := "f"
			if e.IsDir {
				kind = "d"
			}
			fmt.Printf("%s %10d  %s\n", kind, e.Size, e.Name)
		}

	case "providers":
		m, err := client.Membership(ctx)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("storage membership (epoch %d)\n", m.Epoch)
		fmt.Printf("%-24s %s\n", "PROVIDER", "STATE")
		for _, p := range m.Providers {
			fmt.Printf("%-24s %s\n", p.Addr, p.State)
		}

	case "scrub":
		warnDefaultReplication(*replication)
		rep, err := repair.New(repair.Config{Client: client}).Scrub(ctx)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("scrub:", rep)
		if !rep.Clean() {
			fmt.Println("storage plane NEEDS REPAIR (run `blobcr-ctl ... repair`)")
			os.Exit(1)
		}
		fmt.Println("storage plane healthy")

	case "repair":
		warnDefaultReplication(*replication)
		rep, err := repair.New(repair.Config{Client: client}).Repair(ctx)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("repair:", rep)
		if !rep.Post.Clean() {
			fmt.Println("repair DID NOT CONVERGE; re-run once transient failures clear")
			os.Exit(1)
		}

	case "decommission":
		need(args, 2)
		warnDefaultReplication(*replication)
		rep, err := repair.New(repair.Config{Client: client}).Drain(ctx, args[1])
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("decommissioned %s: %s\n", args[1], rep)

	case "stats":
		providers, err := client.Providers(ctx)
		if err != nil {
			log.Fatal(err)
		}
		st, err := client.CasStats(ctx, providers)
		if err != nil {
			log.Fatal(err)
		}
		saved := int64(st.LogicalBytes) - int64(st.PhysicalBytes)
		fmt.Printf("content-addressed repository (%d providers)\n", len(providers))
		fmt.Printf("  chunk bodies      %12d\n", st.Chunks)
		fmt.Printf("  live references   %12d\n", st.Refs)
		fmt.Printf("  logical bytes     %12d\n", st.LogicalBytes)
		fmt.Printf("  physical bytes    %12d  (dedup saves %d)\n", st.PhysicalBytes, saved)
		fmt.Printf("  dedup hit-rate    %11.1f%%  (%d hits / %d misses)\n", 100*st.HitRate(), st.Hits, st.Misses)
		fmt.Printf("  reclaimed by refcount %8d chunks / %d bytes\n", st.ReclaimedChunks, st.ReclaimedBytes)

	default:
		usage()
	}
}

// storeQuery renders one data provider's storage-engine counters, and with
// the `compact` subcommand first runs a compaction pass on it. Only the
// provider address is needed — the verb goes straight to that daemon.
func storeQuery(addr string, timeout time.Duration, args []string) {
	ctx := context.Background()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	client := &blobseer.Client{Net: transport.NewTCP()}
	if len(args) > 2 && args[2] == "compact" {
		res, supported, err := client.CompactChunkStore(ctx, addr)
		if err != nil {
			log.Fatal(err)
		}
		if !supported {
			fmt.Println("engine does not support compaction")
		} else {
			fmt.Printf("compacted %d segments: %d records relocated, %d bytes reclaimed\n",
				res.Segments, res.Relocated, res.ReclaimedBytes)
		}
	}
	es, err := client.StoreEngineStats(ctx, addr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("storage engine at %s: %s\n", addr, es.Backend)
	for _, f := range es.Fields {
		fmt.Printf("  %-24s %12d\n", f.Name, f.Value)
	}
}

// preemptQuery is the spot-preemption path: DRAIN-NOW against a node's
// checkpointing proxy flushes every staged capture to the remote plane
// inside the grace window, so nothing locally-safe dies with the node.
func preemptQuery(addr string, timeout time.Duration) {
	ctx := context.Background()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	net := transport.NewTCP()
	own, partner, err := proxy.Backlog(ctx, net, addr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("backlog before flush: own %d ckpts / %d chunks / %d bytes, partner %d ckpts / %d chunks / %d bytes\n",
		own.Checkpoints, own.Chunks, own.Bytes, partner.Checkpoints, partner.Chunks, partner.Bytes)
	t0 := time.Now()
	modules, err := proxy.DrainNow(ctx, net, addr)
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(t0)
	own, partner, err = proxy.Backlog(ctx, net, addr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("flushed %d module(s) in %s; backlog now: own %d ckpts, partner %d ckpts\n",
		modules, elapsed.Round(time.Millisecond), own.Checkpoints, partner.Checkpoints)
	if own.Checkpoints != 0 {
		fmt.Println("node still holds un-drained captures; NOT safe to reclaim")
		os.Exit(1)
	}
	fmt.Println("node's own captures are globally durable; safe to reclaim (partner replicas drain via DRAINFOR)")
}

// supervisorQuery fetches a running supervisor's event stream or status
// summary from its introspection endpoint over TCP.
func supervisorQuery(addr string, timeout time.Duration, args []string) {
	ctx := context.Background()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	req := "STATUS"
	if args[0] == "events" {
		since := 0
		if len(args) > 1 {
			since = int(parseU64(args[1]))
		}
		req = fmt.Sprintf("EVENTS %d", since)
	}
	resp, err := transport.NewTCP().Call(ctx, addr, []byte(req))
	if err != nil {
		log.Fatal(err)
	}
	s := string(resp)
	if !strings.HasPrefix(s, "OK") {
		log.Fatalf("supervisor: %s", s)
	}
	if args[0] == "status" {
		fmt.Println(strings.TrimPrefix(strings.TrimPrefix(s, "OK"), " "))
		return
	}
	if _, body, found := strings.Cut(s, "\n"); found {
		fmt.Println(body)
	}
}

// superviseDemo runs the autonomous checkpoint-restart loop end to end on an
// in-process cloud: deploy, compute, and survive a two-node failure storm
// with zero manual Restart calls, printing the live event stream.
func superviseDemo() {
	ctx := context.Background()
	fmt.Println("== autonomous checkpoint-restart supervisor demo ==")
	net := transport.WithLatency(transport.NewInProc(), 200*time.Microsecond)
	// Replication 3 keeps every chunk readable through a two-node storm.
	cl, err := cloud.New(cloud.Config{Nodes: 6, MetaProviders: 2, Replication: 3, Dedup: true, Net: net})
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()
	base, err := cl.UploadBaseImage(ctx, make([]byte, 512*1024), 4096)
	if err != nil {
		log.Fatal(err)
	}
	dep, err := cl.Deploy(ctx, 3, base, vm.Config{BlockSize: 512, BootNoiseBytes: 8192})
	if err != nil {
		log.Fatal(err)
	}
	// The storage plane self-heals too: every confirmed failure triggers a
	// background scrub + re-replication pass.
	rep := repair.New(repair.Config{Client: cl.Client()})
	sup := supervisor.New(cl, dep, supervisor.Config{
		HeartbeatEvery: 5 * time.Millisecond,
		PingTimeout:    25 * time.Millisecond,
		SuspectAfter:   2,
		MTBF:           2 * time.Second,
		MinInterval:    50 * time.Millisecond,
		MaxInterval:    200 * time.Millisecond,
		PartialRestart: true,
		Repair:         rep,
	})
	events, unsubscribe := sup.Events().Subscribe()
	defer unsubscribe()
	go func() {
		for e := range events {
			fmt.Println(" ", e)
		}
	}()
	runCtx, cancel := context.WithCancel(ctx)
	done := make(chan struct{})
	go func() {
		defer close(done)
		sup.Run(runCtx)
	}()

	work := func(round int) {
		d, _ := sup.Deployment()
		for _, inst := range d.Instances {
			if fs := inst.VM.FS(); fs != nil {
				fs.WriteFile("/progress", []byte(strconv.Itoa(round)))
			}
		}
	}
	waitGen := func(want int) {
		deadline := time.Now().Add(30 * time.Second)
		for {
			if _, gen := sup.Deployment(); gen >= want {
				return
			}
			if time.Now().After(deadline) {
				log.Fatalf("recovery %d never completed; supervisor metrics: %+v", want, sup.Metrics())
			}
			time.Sleep(time.Millisecond)
		}
	}
	for round := 1; round <= 2; round++ {
		work(round)
		if _, err := sup.CheckpointNow(ctx); err != nil {
			log.Fatal(err)
		}
		d, _ := sup.Deployment()
		victim := d.Instances[round%len(d.Instances)].Node
		time.Sleep(100 * time.Millisecond) // let the checkpoint publish
		fmt.Printf("injecting failure: node %s goes dark (no manual Restart will follow)\n", victim.Name)
		net.Partition(victim.ProxyAddr)
		net.Partition(victim.DataAddr)
		for _, inst := range d.Instances {
			if inst.Node == victim {
				inst.VM.Kill()
			}
		}
		waitGen(round)
	}
	cancel()
	<-done
	m := sup.Metrics()
	fmt.Printf("\nsurvived %d failures unattended: %d recoveries, mean MTTR %s, max %s, work lost %s\n",
		m.FailuresDetected, m.Recoveries, m.MeanMTTR().Round(time.Millisecond),
		m.MaxMTTR.Round(time.Millisecond), m.WorkLost.Round(time.Millisecond))
	fmt.Printf("checkpoints: %d initiated, %d durable; restarts: %d VMs redeployed, %d rolled back in place\n",
		m.CheckpointsInitiated, m.CheckpointsDurable, m.RedeployedVMs, m.InPlaceVMs)
	if scrub, err := rep.Scrub(ctx); err == nil {
		fmt.Printf("storage plane: %d repairs restored %d replicas (%d bytes); final scrub clean=%v\n",
			m.StorageRepairs, m.ReplicasRestored, m.BytesRestored, scrub.Clean())
	}
}

// warnDefaultReplication flags a scrub/repair against the default target of
// one replica: on a deployment written with replication N > 1, that target
// would declare a half-replicated plane "healthy" — the very decay these
// commands exist to catch.
func warnDefaultReplication(replication int) {
	if replication == 0 {
		fmt.Fprintln(os.Stderr, "blobcr-ctl: warning: -replication not set; verifying against a target of 1 replica per chunk")
	}
}

func need(args []string, n int) {
	if len(args) < n {
		usage()
	}
}

func parseU64(s string) uint64 {
	v, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		log.Fatalf("bad number %q", s)
	}
	return v
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: blobcr-ctl -vmanager A -pmanager A -meta A[,A...] <command>
commands:
  upload <file>                       store a raw image, print blob id
  list                                list blobs and versions
  download <blob> <version> <file>    fetch a snapshot as a raw image
  clone <blob> <version>              clone a snapshot into a new image
  inspect <blob> <version> [path]     browse the guest fs inside a snapshot
  stats                               dedup hit-rate, logical vs physical bytes,
                                      refcount reclamation (see -dedup)
  providers                           storage membership: provider states + epoch
  scrub                               anti-entropy pass: verify every replica's
                                      SHA-256, report under-replicated/corrupt
                                      chunks against -replication
  repair                              re-replicate until a scrub comes back clean
  decommission <provider-addr>        drain a provider (replicas re-placed
                                      elsewhere), then retire it from membership
  events [since]                      stream a supervisor's event log (-supervisor)
  status                              supervisor recovery summary (-supervisor)
  metrics <addr>                      scrape a METRICS endpoint (proxy, supervisor
                                      or repair): commit stage timings, suspend
                                      window, per-provider latency, dedup hit-rate
                                      (-watch redraws every two seconds with
                                      per-second rates: server-side HISTORY
                                      windowed rates when the endpoint keeps a
                                      history ring, scrape deltas otherwise)
  top <supervisor-addr>               live cluster dashboard off a federating
                                      supervisor: per-node liveness, suspend
                                      p99, drain backlog, commit MB/s and
                                      firing SLO alerts, all from the one
                                      federated endpoint (-once: single frame)
  trace <addr>[,addr...] <trace-hex>  collect one distributed trace's spans from
                                      the given endpoints, assemble the
                                      cross-process tree and print it with its
                                      critical path
  flight <addr> [node]                dump a flight-recorder ring (recent spans);
                                      with a node name against a supervisor, the
                                      mirrored post-mortem dump of that node
  store <addr> [compact]              a data provider's storage-engine counters
                                      (seglog: segments, live bytes, fsync
                                      batching, compression mix); with compact,
                                      first runs a compaction pass on its log
  preempt <proxy-addr>                spot-preemption flush: DRAIN-NOW the node's
                                      staged checkpoints to the remote plane and
                                      report the backlog before/after; exits
                                      nonzero while captures remain staged
  supervise                           run the autonomous-recovery demo in-process`)
	os.Exit(2)
}
