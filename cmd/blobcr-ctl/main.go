// Command blobcr-ctl is the cloud client's tool for manipulating disk
// images in the checkpoint repository: upload and download images, list
// blobs and versions, clone images, inspect the file system inside a
// snapshot (the paper's standalone-checkpoint-inspection scenario), and
// report the content-addressed repository's deduplication counters.
//
//	blobcr-ctl -vmanager ... -pmanager ... -meta ... upload  base.raw
//	blobcr-ctl ... list
//	blobcr-ctl ... download <blob> <version> out.raw
//	blobcr-ctl ... clone    <blob> <version>
//	blobcr-ctl ... inspect  <blob> <version> [path]
//	blobcr-ctl ... stats
//
// With -dedup, uploads go through the content-addressed repository
// (internal/cas): chunk bodies the repository already holds are neither
// stored again nor shipped over the network.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"blobcr/internal/blobseer"
	"blobcr/internal/guestfs"
	"blobcr/internal/mirror"
	"blobcr/internal/transport"
)

const defaultChunkSize = 256 * 1024

func main() {
	vmAddr := flag.String("vmanager", "", "version manager address")
	pmAddr := flag.String("pmanager", "", "provider manager address")
	meta := flag.String("meta", "", "comma-separated metadata provider addresses")
	chunk := flag.Uint64("chunk", defaultChunkSize, "chunk size for uploads")
	dedup := flag.Bool("dedup", false, "write through the content-addressed repository (dedup commits)")
	flag.Parse()

	if flag.NArg() < 1 {
		usage()
	}
	if *vmAddr == "" || *pmAddr == "" || *meta == "" {
		fmt.Fprintln(os.Stderr, "blobcr-ctl: -vmanager, -pmanager and -meta are required")
		os.Exit(2)
	}
	client := &blobseer.Client{
		Net:       transport.NewTCP(),
		VMAddr:    *vmAddr,
		PMAddr:    *pmAddr,
		MetaAddrs: strings.Split(*meta, ","),
		Dedup:     *dedup,
	}

	args := flag.Args()
	switch args[0] {
	case "upload":
		need(args, 2)
		raw, err := os.ReadFile(args[1])
		if err != nil {
			log.Fatal(err)
		}
		blob, err := client.CreateBlob(*chunk)
		if err != nil {
			log.Fatal(err)
		}
		info, err := client.WriteAt(blob, 0, raw)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("uploaded %s: blob=%d version=%d size=%d\n", args[1], blob, info.Version, info.Size)

	case "list":
		blobs, err := client.ListBlobs()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s %-12s %-10s %s\n", "BLOB", "CHUNKSIZE", "VERSIONS", "LATEST-SIZE")
		for _, b := range blobs {
			size := "-"
			if b.Versions > 0 {
				if info, _, err := client.Latest(b.ID); err == nil {
					size = strconv.FormatUint(info.Size, 10)
				}
			}
			fmt.Printf("%-8d %-12d %-10d %s\n", b.ID, b.ChunkSize, b.Versions, size)
		}

	case "download":
		need(args, 4)
		blob, version := parseU64(args[1]), parseU64(args[2])
		info, _, err := client.GetVersion(blob, version)
		if err != nil {
			log.Fatal(err)
		}
		data, err := client.ReadVersion(blob, version, 0, info.Size)
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(args[3], data, 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("downloaded blob=%d version=%d (%d bytes) to %s\n", blob, version, len(data), args[3])

	case "clone":
		need(args, 3)
		blob, version := parseU64(args[1]), parseU64(args[2])
		id, err := client.Clone(blob, version)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("cloned blob=%d version=%d -> blob=%d\n", blob, version, id)

	case "inspect":
		need(args, 3)
		blob, version := parseU64(args[1]), parseU64(args[2])
		mod, err := mirror.Attach(client, blob, version)
		if err != nil {
			log.Fatal(err)
		}
		fs, err := guestfs.Mount(mod)
		if err != nil {
			log.Fatalf("snapshot does not hold a guest file system: %v", err)
		}
		path := "/"
		if len(args) > 3 {
			path = args[3]
		}
		info, err := fs.Stat(path)
		if err != nil {
			log.Fatal(err)
		}
		if !info.IsDir {
			data, err := fs.ReadFile(path)
			if err != nil {
				log.Fatal(err)
			}
			os.Stdout.Write(data)
			return
		}
		entries, err := fs.ReadDir(path)
		if err != nil {
			log.Fatal(err)
		}
		for _, e := range entries {
			kind := "f"
			if e.IsDir {
				kind = "d"
			}
			fmt.Printf("%s %10d  %s\n", kind, e.Size, e.Name)
		}

	case "stats":
		providers, err := client.Providers()
		if err != nil {
			log.Fatal(err)
		}
		st, err := client.CasStats(providers)
		if err != nil {
			log.Fatal(err)
		}
		saved := int64(st.LogicalBytes) - int64(st.PhysicalBytes)
		fmt.Printf("content-addressed repository (%d providers)\n", len(providers))
		fmt.Printf("  chunk bodies      %12d\n", st.Chunks)
		fmt.Printf("  live references   %12d\n", st.Refs)
		fmt.Printf("  logical bytes     %12d\n", st.LogicalBytes)
		fmt.Printf("  physical bytes    %12d  (dedup saves %d)\n", st.PhysicalBytes, saved)
		fmt.Printf("  dedup hit-rate    %11.1f%%  (%d hits / %d misses)\n", 100*st.HitRate(), st.Hits, st.Misses)
		fmt.Printf("  reclaimed by refcount %8d chunks / %d bytes\n", st.ReclaimedChunks, st.ReclaimedBytes)

	default:
		usage()
	}
}

func need(args []string, n int) {
	if len(args) < n {
		usage()
	}
}

func parseU64(s string) uint64 {
	v, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		log.Fatalf("bad number %q", s)
	}
	return v
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: blobcr-ctl -vmanager A -pmanager A -meta A[,A...] <command>
commands:
  upload <file>                       store a raw image, print blob id
  list                                list blobs and versions
  download <blob> <version> <file>    fetch a snapshot as a raw image
  clone <blob> <version>              clone a snapshot into a new image
  inspect <blob> <version> [path]     browse the guest fs inside a snapshot
  stats                               dedup hit-rate, logical vs physical bytes,
                                      refcount reclamation (see -dedup)`)
	os.Exit(2)
}
