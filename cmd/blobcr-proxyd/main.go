// Command blobcr-proxyd runs a compute node's checkpointing agent: it boots
// VM instances from a base image stored in a BlobSeer deployment (lazy
// transfer through the mirroring module) and serves checkpoint requests for
// them on the local checkpointing proxy port.
//
//	blobcr-proxyd -vmanager host:7700 -pmanager host:7701 \
//	    -meta host:7710,host:7711 -base 1 -instances 2 -listen 127.0.0.1:7800
//
// Tokens for the hosted instances are printed at startup; guests use them
// with the proxy protocol (CHECKPOINT <vm-id> <token>).
//
// -stage-backend enables multilevel checkpointing: captures are staged in a
// node-local write-back tier (mem, disk or seglog under -stage-dir) and
// acknowledged locally safe as soon as they are staged — and replicated to
// the -partner proxy, when one is named — while a background drain publishes
// them to the BlobSeer plane. The WAITLOCAL, BACKLOG, DRAIN-NOW and DRAINFOR
// verbs (and blobcr-ctl preempt) control the tier.
//
// The proxy answers METRICS on its own port (scrape it with blobcr-ctl
// metrics; oversized expositions continue under MORE chunks), plus the
// tokenless TRACE <trace-hex> and FLIGHT introspection verbs — its span
// store for one distributed trace, and its always-on flight-recorder ring
// (blobcr-ctl trace / flight). -history keeps a ring of metric snapshots so
// the HISTORY verb can answer windowed rates and quantiles (blobcr-ctl
// metrics -watch and the supervisor's federation use it). -debug-addr
// additionally binds an HTTP listener serving /metrics, /healthz,
// /debug/pprof/* and /debug/vars for Prometheus and pprof.
package main

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"blobcr/internal/blobseer"
	"blobcr/internal/chunkstore"
	"blobcr/internal/localtier"
	"blobcr/internal/mirror"
	"blobcr/internal/obs"
	"blobcr/internal/proxy"
	"blobcr/internal/seglog"
	"blobcr/internal/transport"
	"blobcr/internal/vm"
)

func main() {
	vmAddr := flag.String("vmanager", "", "version manager address")
	pmAddr := flag.String("pmanager", "", "provider manager address")
	meta := flag.String("meta", "", "comma-separated metadata provider addresses")
	base := flag.Uint64("base", 0, "base image blob id")
	version := flag.Uint64("version", 0, "base image version")
	instances := flag.Int("instances", 1, "VM instances to host")
	listen := flag.String("listen", "127.0.0.1:0", "proxy listen address")
	node := flag.String("node", "node-0", "node name used in VM ids")
	parallel := flag.Int("parallel", 0, "concurrent per-provider streams for commits and restores (0 = client default)")
	debugAddr := flag.String("debug-addr", "", "HTTP debug listener: /metrics, /debug/pprof/*, /debug/vars (empty = off)")
	stageBackend := flag.String("stage-backend", "", "node-local checkpoint tier backend: mem, disk or seglog (empty = no local tier)")
	stageDir := flag.String("stage-dir", "", "directory backing the local tier (required for -stage-backend disk/seglog)")
	partnerAddr := flag.String("partner", "", "partner proxy address replicating this node's staged captures (requires -stage-backend)")
	history := flag.Duration("history", time.Second, "metric history ring sample period backing the HISTORY verb (0 = no ring)")
	flag.Parse()

	if *vmAddr == "" || *pmAddr == "" || *meta == "" || *base == 0 {
		fmt.Fprintln(os.Stderr, "blobcr-proxyd: -vmanager, -pmanager, -meta and -base are required")
		os.Exit(2)
	}
	// Meter every wire call into the default registry: the proxy's METRICS
	// verb and the -debug-addr /metrics page both scrape it. The history ring
	// lets the same registry answer windowed HISTORY queries server-side.
	net := transport.WithMeter(transport.NewTCP(), nil, blobseer.VerbName)
	if *history > 0 {
		obs.Default.StartHistory(*history, 256)
	}
	if *debugAddr != "" {
		dbg, err := obs.ServeDebug(*debugAddr, nil)
		if err != nil {
			log.Fatalf("start debug listener: %v", err)
		}
		defer dbg.Close()
		log.Printf("debug listener on http://%s (/metrics, /debug/pprof/)", dbg.Addr)
	}
	client := &blobseer.Client{
		Net:         net,
		VMAddr:      *vmAddr,
		PMAddr:      *pmAddr,
		MetaAddrs:   strings.Split(*meta, ","),
		Parallelism: *parallel,
	}

	p := proxy.New()
	if *stageBackend != "" {
		store, err := newStageStore(*stageBackend, *stageDir)
		if err != nil {
			log.Fatalf("open local tier: %v", err)
		}
		p.Stage = localtier.New(store, obs.Default)
		p.Net = net
		p.Repo = client
		p.PartnerAddr = *partnerAddr
		if *partnerAddr != "" {
			log.Printf("local tier (%s) with partner replica at %s", *stageBackend, *partnerAddr)
		} else {
			log.Printf("local tier (%s), no partner — staged captures are not node-loss safe", *stageBackend)
		}
	} else if *partnerAddr != "" {
		fmt.Fprintln(os.Stderr, "blobcr-proxyd: -partner requires -stage-backend")
		os.Exit(2)
	}
	srv, err := p.Serve(net, *listen)
	if err != nil {
		log.Fatalf("start proxy: %v", err)
	}
	log.Printf("checkpointing proxy listening on %s", srv.Addr())

	ctx := context.Background()
	for i := 0; i < *instances; i++ {
		mod, err := mirror.Attach(ctx, client, blobseer.SnapshotRef{Blob: *base, Version: *version})
		if err != nil {
			log.Fatalf("attach base image: %v", err)
		}
		id := fmt.Sprintf("%s-vm-%d", *node, i)
		inst := vm.New(id, mod, vm.Config{})
		if err := inst.Boot(); err != nil {
			log.Fatalf("boot %s: %v", id, err)
		}
		token := newToken()
		p.Register(id, token, inst, mod)
		log.Printf("instance %s booted (disk %d MB); token %s", id, mod.Size()/1e6, token)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	log.Printf("shutting down")
	srv.Close()
}

// newStageStore opens the chunk store backing the node-local tier.
func newStageStore(backend, dir string) (chunkstore.Store, error) {
	switch backend {
	case "mem":
		return chunkstore.NewMem(), nil
	case "disk":
		if dir == "" {
			return nil, fmt.Errorf("-stage-backend disk requires -stage-dir")
		}
		return chunkstore.NewDisk(dir)
	case "seglog":
		if dir == "" {
			return nil, fmt.Errorf("-stage-backend seglog requires -stage-dir")
		}
		return seglog.Open(dir, seglog.Options{})
	default:
		return nil, fmt.Errorf("unknown stage backend %q (mem, disk, seglog)", backend)
	}
}

func newToken() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		log.Fatalf("token: %v", err)
	}
	return hex.EncodeToString(b[:])
}
