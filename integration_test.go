package blobcr_test

// Full-stack integration tests over real TCP sockets: the same wiring the
// cmd/ daemons use — a BlobSeer deployment, the mirroring module, a booted
// VM with a guest file system, and the checkpointing proxy — exercised end
// to end, including failure rollback and snapshot garbage collection.

import (
	"bytes"
	"context"
	"fmt"
	"testing"

	"blobcr/internal/blobseer"
	"blobcr/internal/guestfs"
	"blobcr/internal/mirror"
	"blobcr/internal/proxy"
	"blobcr/internal/transport"
	"blobcr/internal/vm"
)

const itChunk = 4096

var itCtx = context.Background()

// tcpStack deploys BlobSeer over TCP and uploads a formatted base image.
func tcpStack(t *testing.T) (*transport.TCP, *blobseer.Deployment, *blobseer.Client, blobseer.SnapshotRef) {
	t.Helper()
	net := transport.NewTCP()
	t.Cleanup(func() { net.Close() })
	d, err := blobseer.Deploy(net, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)
	c := d.Client()
	base, err := c.CreateBlob(itCtx, itChunk)
	if err != nil {
		t.Fatal(err)
	}
	info, err := c.WriteAt(itCtx, base, 0, make([]byte, 1<<20))
	if err != nil {
		t.Fatal(err)
	}
	return net, d, c, blobseer.SnapshotRef{Blob: base, Version: info.Version}
}

func TestTCPEndToEndCheckpointRestart(t *testing.T) {
	net, _, c, baseRef := tcpStack(t)

	// Node agent: attach mirror, boot VM, register with a TCP proxy.
	mod, err := mirror.Attach(itCtx, c, baseRef)
	if err != nil {
		t.Fatal(err)
	}
	inst := vm.New("it-vm", mod, vm.Config{BlockSize: 512, BootNoiseBytes: 8192})
	if err := inst.Boot(); err != nil {
		t.Fatal(err)
	}
	p := proxy.New()
	p.Register("it-vm", "tok", inst, mod)
	srv, err := p.Serve(net, "")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	pc := &proxy.Client{Net: net, Addr: srv.Addr(), VMID: "it-vm", Token: "tok"}

	// Guest computes and checkpoints through the TCP proxy.
	if err := inst.FS().WriteFile("/result", []byte("computed over TCP")); err != nil {
		t.Fatal(err)
	}
	ref, err := pc.RequestCheckpoint(itCtx)
	if err != nil {
		t.Fatalf("checkpoint over TCP: %v", err)
	}

	// Post-checkpoint damage, then a "failure".
	inst.FS().WriteFile("/result", []byte("corrupted"))
	inst.Kill()

	// Restart on a "different node": new mirror over TCP from the snapshot.
	mod2, err := mirror.AttachCheckpoint(itCtx, c, ref)
	if err != nil {
		t.Fatal(err)
	}
	inst2 := vm.New("it-vm", mod2, vm.Config{BlockSize: 512})
	if err := inst2.Boot(); err != nil {
		t.Fatal(err)
	}
	got, err := inst2.FS().ReadFile("/result")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "computed over TCP" {
		t.Errorf("rollback over TCP returned %q", got)
	}
	if err := inst2.FS().Fsck(); err != nil {
		t.Errorf("restored guest fs inconsistent: %v", err)
	}
}

func TestTCPSnapshotDownloadAndInspect(t *testing.T) {
	net, _, c, baseRef := tcpStack(t)
	_ = net

	mod, err := mirror.Attach(itCtx, c, baseRef)
	if err != nil {
		t.Fatal(err)
	}
	inst := vm.New("dl-vm", mod, vm.Config{BlockSize: 512, BootNoiseBytes: 4096})
	if err := inst.Boot(); err != nil {
		t.Fatal(err)
	}
	inst.FS().MkdirAll("/data")
	inst.FS().WriteFile("/data/answer", []byte("42"))
	if err := mod.Clone(itCtx); err != nil {
		t.Fatal(err)
	}
	info, err := mod.Commit(itCtx)
	if err != nil {
		t.Fatal(err)
	}
	ckpt, _ := mod.CheckpointImage()

	// Download the snapshot as a standalone raw image (blobcr-ctl download).
	raw, err := c.ReadVersion(itCtx, blobseer.SnapshotRef{Blob: ckpt, Version: info.Version}, 0, uint64(mod.Size()))
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(raw)) != mod.Size() {
		t.Fatalf("downloaded %d bytes, want %d", len(raw), mod.Size())
	}
	// The raw bytes are a mountable file system.
	dev := memDevice(raw)
	fs, err := guestfs.Mount(dev)
	if err != nil {
		t.Fatalf("downloaded image does not mount: %v", err)
	}
	got, err := fs.ReadFile("/data/answer")
	if err != nil || string(got) != "42" {
		t.Errorf("inspect downloaded image: %q, %v", got, err)
	}
}

// memDevice wraps raw bytes as a vdisk.Device.
func memDevice(raw []byte) *deviceBytes { return &deviceBytes{b: raw} }

type deviceBytes struct{ b []byte }

func (d *deviceBytes) ReadAt(p []byte, off int64) (int, error) {
	if off >= int64(len(d.b)) {
		return 0, fmt.Errorf("eof")
	}
	n := copy(p, d.b[off:])
	return n, nil
}
func (d *deviceBytes) WriteAt(p []byte, off int64) (int, error) {
	n := copy(d.b[off:], p)
	return n, nil
}
func (d *deviceBytes) Size() int64  { return int64(len(d.b)) }
func (d *deviceBytes) Flush() error { return nil }

func TestTCPMultiVMConcurrentCheckpoints(t *testing.T) {
	net, _, c, baseRef := tcpStack(t)

	const nVMs = 4
	type unit struct {
		inst *vm.Instance
		pc   *proxy.Client
	}
	var units []unit
	p := proxy.New()
	srv, err := p.Serve(net, "")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	for i := 0; i < nVMs; i++ {
		mod, err := mirror.Attach(itCtx, c, baseRef)
		if err != nil {
			t.Fatal(err)
		}
		id := fmt.Sprintf("vm-%d", i)
		inst := vm.New(id, mod, vm.Config{BlockSize: 512, BootNoiseBytes: 4096})
		if err := inst.Boot(); err != nil {
			t.Fatal(err)
		}
		inst.FS().WriteFile("/rank", []byte{byte(i)})
		p.Register(id, "tok", inst, mod)
		units = append(units, unit{inst, &proxy.Client{Net: net, Addr: srv.Addr(), VMID: id, Token: "tok"}})
	}

	// Concurrent checkpoint requests, as a global checkpoint issues them.
	type result struct {
		ref blobseer.SnapshotRef
		err error
	}
	results := make(chan result, nVMs)
	for _, u := range units {
		u := u
		go func() {
			ref, err := u.pc.RequestCheckpoint(itCtx)
			results <- result{ref, err}
		}()
	}
	seen := map[uint64]bool{}
	for i := 0; i < nVMs; i++ {
		r := <-results
		if r.err != nil {
			t.Fatalf("concurrent checkpoint: %v", r.err)
		}
		if seen[r.ref.Blob] {
			t.Errorf("two VMs share checkpoint image %d", r.ref.Blob)
		}
		seen[r.ref.Blob] = true
		// Each snapshot holds its own VM's rank file.
		raw, err := c.ReadVersion(itCtx, r.ref, 0, 1<<20)
		if err != nil {
			t.Fatal(err)
		}
		if len(raw) == 0 {
			t.Error("empty snapshot")
		}
	}
}

func TestTCPGarbageCollectionAfterCheckpoints(t *testing.T) {
	net, d, c, baseRef := tcpStack(t)
	_ = net

	mod, err := mirror.Attach(itCtx, c, baseRef)
	if err != nil {
		t.Fatal(err)
	}
	inst := vm.New("gc-vm", mod, vm.Config{BlockSize: 512, BootNoiseBytes: 4096})
	if err := inst.Boot(); err != nil {
		t.Fatal(err)
	}
	if err := mod.Clone(itCtx); err != nil {
		t.Fatal(err)
	}
	var last blobseer.VersionInfo
	for i := 0; i < 5; i++ {
		inst.FS().WriteFile("/state", bytes.Repeat([]byte{byte(i + 1)}, 64*1024))
		inst.FS().Sync()
		last, err = mod.Commit(itCtx)
		if err != nil {
			t.Fatal(err)
		}
	}
	ckpt, _ := mod.CheckpointImage()
	_, chunksBefore, err := c.Usage(itCtx, d.DataAddrs)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Retire(itCtx, ckpt, last.Version); err != nil {
		t.Fatal(err)
	}
	stats, err := c.GC(itCtx, d.DataAddrs)
	if err != nil {
		t.Fatal(err)
	}
	if stats.DeletedChunks == 0 {
		t.Error("GC over TCP reclaimed nothing")
	}
	_, chunksAfter, err := c.Usage(itCtx, d.DataAddrs)
	if err != nil {
		t.Fatal(err)
	}
	if chunksAfter >= chunksBefore {
		t.Errorf("chunks %d -> %d", chunksBefore, chunksAfter)
	}
	// The surviving snapshot still boots.
	mod2, err := mirror.AttachCheckpoint(itCtx, c, blobseer.SnapshotRef{Blob: ckpt, Version: last.Version})
	if err != nil {
		t.Fatal(err)
	}
	inst2 := vm.New("gc-vm2", mod2, vm.Config{BlockSize: 512})
	if err := inst2.Boot(); err != nil {
		t.Fatalf("boot after GC: %v", err)
	}
	got, err := inst2.FS().ReadFile("/state")
	if err != nil || got[0] != 5 {
		t.Errorf("state after GC: %v, %v", got[:min(4, len(got))], err)
	}
}
