// Package blobcr is a reproduction of "BlobCR: Efficient Checkpoint-Restart
// for HPC Applications on IaaS Clouds using Virtual Disk Image Snapshots"
// (Nicolae & Cappello, SC'11).
//
// The implementation lives under internal/: the BlobSeer versioning store,
// the mirroring module, the qcow2 and PVFS baselines, the guest file
// system, the MPI runtime with coordinated checkpointing, the IaaS
// middleware, the BlobCR framework itself (internal/core), and the
// experiment-scale performance model (internal/simcloud). Executables are
// under cmd/ and runnable examples under examples/. See README.md for a
// tour and EXPERIMENTS.md for the reproduced evaluation.
//
// Beyond the paper, the repository implements a content-addressed
// deduplicated chunk store (internal/cas): committed chunks are
// fingerprinted with SHA-256, placed by rendezvous hash of their content,
// and stored once no matter how many snapshots — across checkpoints and
// across VMs — reference them; a "have fingerprint?" round trip keeps
// duplicate bodies off the network entirely. Retiring old snapshots then
// reclaims space by decrementing per-chunk reference counts in O(retired
// chunks), realizing the paper's proposed transparent snapshot garbage
// collection (future work, Section 6) in incremental form; the
// mark-and-sweep collector remains as the exhaustive fallback. Enable it
// with blobseer.Client.Dedup or cloud.Config.Dedup.
//
// # Autonomous checkpoint-restart supervisor
//
// internal/supervisor closes the checkpoint-restart control loop: a
// heartbeat failure detector over the proxies' PING verb, periodic global
// checkpoints on the Young/Daly interval computed from the observed
// checkpoint cost and a configured MTBF (simcloud.OptimalInterval),
// rollback planning restricted to the newest globally durable checkpoint
// (cloud.Deployment's durability watermark — with asynchronous commits the
// newest recorded checkpoint may still be publishing and is refused with
// cloud.ErrNotDurable), and self-healing restarts with bounded retries,
// exponential backoff and spare-node placement. Partial restart
// (cloud.PartialRestart, core.Job.RestartPartial) redeploys only the
// members that died while healthy members roll back in place
// (mirror.RollbackTo), and commits fail over to live providers when a data
// provider dies mid-commit. The supervisor's structured event stream (MTTR
// and lost-work accounting included) is served over the transport for
// blobcr-ctl events/status; blobcr-ctl supervise demonstrates the loop and
// blobcr-bench -only availability measures it.
//
// # Elastic self-healing storage plane
//
// internal/repair keeps the repository durable while data providers come
// and go, the way the supervisor keeps the deployment available while
// compute nodes fail. The provider membership is dynamic: providers JOIN
// at runtime (blobseer.Client.RegisterProvider, cloud.AddNode) and become
// placement-eligible immediately, and DECOMMISSION is two-phase —
// DrainProvider parks a provider out of placement while it keeps serving
// reads, and RetireProvider removes it once the repair plane has re-placed
// its replicas; every transition bumps a membership epoch. An anti-entropy
// scrubber (repair.Repairer.Scrub) walks the metadata trees of all live
// versions and re-verifies every replica's SHA-256 against its content key
// in batched per-provider streams; the read path performs the same check
// inline, failing a corrupt replica over like a missing one
// (blobseer.ReadStats counts both). Background re-replication
// (Repairer.Repair) restores under-replicated chunks onto the
// rendezvous-ranked active providers — the same ranking the write path
// places by and readers fall back to when a leaf's recorded replicas are
// all gone — with exact CAS reference accounting: the version manager's
// write-event references are relocated (blobseer.Client.RelocateWrites,
// precount / pre-install / apply / settle), so Retire releases precisely
// at the new homes even when repair races in-flight commits. Supervisors
// trigger repairs automatically on confirmed failures
// (supervisor.Config.Repair); blobcr-ctl providers/scrub/repair/
// decommission drive the plane by hand, and blobcr-bench -only repair
// measures storage MTTR and re-replication throughput vs provider count.
//
// # Durable log-structured storage engine
//
// internal/seglog gives the data providers a disk engine built for
// checkpoint commit storms: chunks are appended to segment files as
// CRC32C-checksummed self-delimiting records, and concurrent Puts ride a
// shared group commit — the leader writes the whole batch with one append
// and one fdatasync, so under load the fsync count is a small fraction of
// the put count (the file-per-chunk store pays two fsyncs per chunk). The
// engine elides all-zero chunks (sparse VM images) to a header flag and
// DEFLATE-compresses payloads when an entropy probe says it will pay,
// rebuilds its in-memory index on open by scanning the segments —
// truncating a torn tail from a crash mid-append at the first bad CRC —
// and compacts segments whose live ratio decays as snapshots retire,
// folded into the repair scrubber's cadence. Select engines with
// blobseerd -store seglog|files|mem; blobcr-ctl store <addr> prints any
// engine's counters over the wire, and blobcr-bench -only disklog
// measures both disk engines through the full striped commit path.
//
// # Multilevel checkpointing: node-local fast tier
//
// internal/localtier adds the write-back tier in front of the striped
// remote commit. With cloud.Config.LocalTier (or blobcr-proxyd
// -stage-backend mem|disk|seglog -partner <addr>), each proxy stages every
// capture into a node-local chunkstore-backed staging store and pushes a
// replica to one partner proxy over binary stage frames, then acks the
// checkpoint as locally safe (proxy WAITLOCAL; mirror.PendingCommit.
// WaitLocallySafe) and releases the commit pipeline's admission slot — the
// suspend window of a checkpoint burst runs at local pace even when the
// remote plane is bandwidth-starved. A background drainer then publishes
// staged captures through the dedup/CAS commit path at remote-plane pace,
// advancing the checkpoint to globally durable (the only state rollback
// targets). The two watermarks thread through the stack:
// cloud.Deployment.MarkLocallySafe/MarkDurable and LocalWatermark/
// DurableWatermark, the proxy's STATUS staged backlog, and the
// supervisor's STATUS local-watermark and per-node backlog fields. A
// single node loss never loses a locally-safe checkpoint: the supervisor
// asks the dead node's partner to publish the replica on its behalf
// (DRAINFOR) and promotes the checkpoint before planning the rollback; a
// healthy node whose VM died drains its own tier the same way. On tiered
// deployments the supervisor keys its Young/Daly cadence to the local
// checkpoint cost, so checkpoints run at the tier's (cheap) price.
// DRAIN-NOW (blobcr-ctl preempt) is the spot-preemption path: flush a
// node's staged backlog inside the grace window. blobcr-bench -only
// localtier shows the suspend window decoupled from remote bandwidth, and
// -only preemption the work saved by a grace-window flush.
//
// # Parallel striped I/O engine
//
// The whole data path — commit upload, dedup probing, restore reads, and
// metadata-tree traffic — moves whole per-provider sets per round trip and
// runs the per-provider streams concurrently. The wire protocol's batch
// verbs (opChunkPutBatch/GetBatch, opCasRefBatch/PutBatch,
// opNodePutBatch/GetBatch; see internal/blobseer's package comment) carry
// many items per frame, so a dedup commit issues one "have these
// fingerprints?" round trip per provider instead of one per chunk, a
// Publish flushes its whole metadata-node set in one frame per shard, and a
// restore's lookup descends the tree level by level in O(depth) round trips.
// blobseer.Client.Parallelism bounds the concurrent per-provider streams
// (default blobseer.DefaultParallelism, currently 8; deployments striping
// wider set it to at least their provider count — cloud.Config.Parallelism
// and the -parallel flags of blobcr-ctl and blobcr-proxyd thread it
// through). Replica reads rotate their starting replica by chunk-key hash,
// spreading restore load across the replica set while keeping in-order
// failover. blobcr-bench -only throughput measures commit/restore MB/s
// against provider count.
//
// # End-to-end telemetry plane
//
// internal/obs gives every layer one dependency-free metrics registry —
// atomic counters, gauges and log2-bucketed histograms keyed by
// name+labels — plus span tracing for the commit pipeline: each
// asynchronous commit emits five ordered spans (commit/capture under the
// suspend window, then commit/probe, commit/upload, commit/publish,
// commit/durable in the background), carried on the context.Context and
// recorded both per-request (obs.Trace) and as span_ns histograms.
// transport.Meter wraps any Network and records per-verb calls, bytes and
// latency (plus a per-address breakdown), tagging RemoteError values with
// the originating verb; the blobseer client counts dedup hit bytes, batch
// frames and failovers; the proxy records the suspend window; the
// supervisor its heartbeat RTTs, MTTR and dropped events (its event log is
// a fixed-capacity ring); the repair plane its scrub findings and restored
// bytes. The proxy, supervisor and repair wire endpoints answer a METRICS
// verb with versioned Prometheus text that obs.ParseProm reads back;
// blobcr-ctl metrics renders the operator view (per-stage suspend-window
// breakdown, per-provider latency, dedup hit-rate; -watch redraws live),
// and blobcr-proxyd/blobseerd -debug-addr serve HTTP /metrics,
// /debug/pprof and /debug/vars. blobcr-bench -only stages decomposes a
// traced commit per provider count, and the downtime experiment scrapes
// METRICS itself, failing when stage telemetry goes missing.
//
// Tracing crosses process boundaries: under an active trace
// (obs.BeginTrace) the transport injects a trace-context header into every
// frame — batch verbs and the detached context.WithoutCancel commit path
// included — and re-establishes the span context server-side, so handler
// spans parent under the caller's RPC spans across the wire. Each service
// holds its spans in a bounded per-trace store behind a tokenless TRACE
// <id> verb (text on proxy/supervisor/repair endpoints, a binary sibling
// on the blobseer services); blobcr-ctl trace collects the fragments,
// anchors remote clocks inside their parent RPC windows, and prints one
// cross-process tree plus its critical path — at every instant, the span
// actually bounding completion (obs.AssembleTrace, obs.CriticalPath;
// blobcr-bench -only tracepath asserts the path attributes >= 90% of a
// 16 MiB commit's wall time at 8 providers). Independently of traces,
// every process keeps an always-on flight recorder — a fixed-capacity
// overwrite-oldest ring of its most recent spans — dumped by a FLIGHT
// verb and blobcr-ctl flight; the supervisor mirrors each node's ring
// during heartbeat rounds and archives the last mirror as a FINAL
// post-mortem when its failure detector confirms a death (FLIGHT <node>),
// so a dead provider's final group commits remain readable after the
// process is gone. Oversized METRICS expositions continue under OK v1
// MORE <offset> chunks, reassembled by transport.ScrapeExposition, and
// blobcr-ctl metrics -watch derives per-second counter rates from
// successive scrapes.
//
// # Cluster health plane
//
// internal/health turns the per-process telemetry into one cluster
// verdict. Any registry can keep a metric history ring
// (obs.Registry.StartHistory): a bounded ring of delta-encoded snapshots
// whose evicted samples fold into their successor, so a windowed
// reduction (obs.History.Window — counter deltas and rates, gauge
// first/last/min/max, histogram count/mean/p50/p99) stays exact across
// wrap. Rings answer a HISTORY [seconds] verb beside METRICS (text on the
// proxy/supervisor/repair endpoints, binary siblings on the blobseer
// services; blobcr-proxyd/blobseerd -history set the sample period), and
// blobcr-ctl metrics -watch reads the server's ring for exact windowed
// rates. Each supervisor health round federates the fleet
// (health.Federator): it scrapes every node's proxy and co-located data
// provider and imports the expositions into one cluster registry with
// every series relabelled node= (obs.Registry.Import), so a single scrape
// of the supervisor covers the fleet; federation_node_up tracks scrape
// health and a dead node's series hold their last-seen values. Over the
// federated history a declarative SLO engine (health.Engine, health.Rule)
// evaluates windowed signals — any metric aggregate or a ratio of two —
// against multi-window burn-rate conditions (every window must breach:
// the fast window rejects slow bleeds, the slow one rejects blips) with
// fire/resolve hysteresis; health.DefaultRules covers suspend-window p99,
// drain-backlog growth, heartbeat miss rate, storage MTTR, dedup
// hit-rate collapse and seglog live ratio. Firings become supervisor
// events, health_alert_active gauges, and the HEALTH verb's cluster
// verdict (the debug listener's /healthz answers 200/503 from the same
// source). blobcr-ctl top draws the live cluster dashboard from the
// supervisor's federated endpoint alone, and blobcr-bench -only health
// measures throttle-to-alert latency in federation rounds, failing CI
// above two.
//
// # Asynchronous checkpoint handles
//
// The checkpoint lifecycle is asynchronous end to end: the proxy's
// CHECKPOINT verb resumes the VM as soon as its dirty chunks are captured
// locally, and the commit to the repository proceeds in the background
// behind a handle (mirror.PendingCommit / core.PendingCheckpoint) that
// WAIT or POLL resolve. Every operation takes a context.Context —
// cancelling an in-flight commit runs the abort path and returns every
// content-addressed reference it took — and snapshot identity is the one
// blobseer.SnapshotRef value type at every layer.
//
// Migration from the old synchronous API:
//
//	Old (synchronous, bare pairs)               New (handles, contexts, refs)
//	-----------------------------               -----------------------------
//	transport.Network.Call(addr, req)           Call(ctx, addr, req)
//	blobseer GetVersion(blob, ver)              GetVersion(ctx, SnapshotRef{blob, ver})
//	blobseer ReadVersion(blob, ver, off, n)     ReadVersion(ctx, ref, off, n)
//	blobseer Clone(blob, ver)                   Clone(ctx, ref)
//	mirror.Attach(c, blob, ver)                 Attach(ctx, c, ref)
//	mirror Commit()                             Commit(ctx), or CommitAsync(ctx) -> *PendingCommit
//	proxy RequestCheckpoint() (blob, ver)       RequestCheckpoint(ctx) (SnapshotRef) — or
//	                                            RequestCheckpointAsync(ctx) + WaitCheckpoint/PollCheckpoint
//	cloud UploadBaseImage(raw, cs) (b, v)       UploadBaseImage(ctx, raw, cs) (SnapshotRef)
//	core NewJob(cl, blob, ver, cfg)             NewJob(ctx, cl, ref, cfg)
//	core Rank.Checkpoint(save)                  Checkpoint(ctx, save), or
//	                                            CheckpointAsync(ctx, save) -> *PendingCheckpoint
//	string-matching "not found" errors          errors.Is(err, transport.ErrNotFound)
package blobcr
