// Package blobcr is a reproduction of "BlobCR: Efficient Checkpoint-Restart
// for HPC Applications on IaaS Clouds using Virtual Disk Image Snapshots"
// (Nicolae & Cappello, SC'11).
//
// The implementation lives under internal/: the BlobSeer versioning store,
// the mirroring module, the qcow2 and PVFS baselines, the guest file
// system, the MPI runtime with coordinated checkpointing, the IaaS
// middleware, the BlobCR framework itself (internal/core), and the
// experiment-scale performance model (internal/simcloud). Executables are
// under cmd/ and runnable examples under examples/. See README.md for a
// tour and EXPERIMENTS.md for the reproduced evaluation.
package blobcr
