// Package blobcr is a reproduction of "BlobCR: Efficient Checkpoint-Restart
// for HPC Applications on IaaS Clouds using Virtual Disk Image Snapshots"
// (Nicolae & Cappello, SC'11).
//
// The implementation lives under internal/: the BlobSeer versioning store,
// the mirroring module, the qcow2 and PVFS baselines, the guest file
// system, the MPI runtime with coordinated checkpointing, the IaaS
// middleware, the BlobCR framework itself (internal/core), and the
// experiment-scale performance model (internal/simcloud). Executables are
// under cmd/ and runnable examples under examples/. See README.md for a
// tour and EXPERIMENTS.md for the reproduced evaluation.
//
// Beyond the paper, the repository implements a content-addressed
// deduplicated chunk store (internal/cas): committed chunks are
// fingerprinted with SHA-256, placed by rendezvous hash of their content,
// and stored once no matter how many snapshots — across checkpoints and
// across VMs — reference them; a "have fingerprint?" round trip keeps
// duplicate bodies off the network entirely. Retiring old snapshots then
// reclaims space by decrementing per-chunk reference counts in O(retired
// chunks), realizing the paper's proposed transparent snapshot garbage
// collection (future work, Section 6) in incremental form; the
// mark-and-sweep collector remains as the exhaustive fallback. Enable it
// with blobseer.Client.Dedup or cloud.Config.Dedup.
package blobcr
