package blobcr_test

// Functional benchmarks for the paper's future-work extension implemented
// here: transparent garbage collection of obsoleted snapshots
// (blobseer.Client.GC + cloud.Prune), the content-addressed dedup commit
// path (internal/cas), and refcount-based reclamation on snapshot retire.

import (
	"bytes"
	"context"
	"testing"

	"blobcr/internal/blobseer"
	"blobcr/internal/transport"
)

var gctx = context.Background()

func BenchmarkGCReclaim(b *testing.B) {
	const chunk = 4096
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		d, err := blobseer.Deploy(transport.NewInProc(), 2, 4)
		if err != nil {
			b.Fatal(err)
		}
		c := d.Client()
		blob, err := c.CreateBlob(gctx, chunk)
		if err != nil {
			b.Fatal(err)
		}
		// 8 versions x 32 chunks, all but the last retired.
		for v := 0; v < 8; v++ {
			writes := make(map[uint64][]byte)
			for idx := uint64(0); idx < 32; idx++ {
				writes[idx] = bytes.Repeat([]byte{byte(v)}, chunk)
			}
			if _, err := c.WriteVersion(gctx, blob, writes, 32*chunk); err != nil {
				b.Fatal(err)
			}
		}
		if err := c.Retire(gctx, blob, 7); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		stats, err := c.GC(gctx, d.DataAddrs)
		if err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		if stats.DeletedChunks == 0 {
			b.Fatal("GC reclaimed nothing")
		}
		b.ReportMetric(float64(stats.DeletedChunks), "chunks_reclaimed")
		d.Close()
	}
}

// successiveCommits drives the Figure 5 workload functionally: `rounds`
// snapshots of a 32-chunk state buffer where `overlap` of each round's
// chunks repeat content from the previous round (re-dumped unchanged
// state) and the rest are fresh. Returns cumulative commit stats.
func successiveCommits(b *testing.B, c *blobseer.Client, rounds, chunks, chunk int, overlap float64) blobseer.CommitStats {
	b.Helper()
	blob, err := c.CreateBlob(gctx, uint64(chunk))
	if err != nil {
		b.Fatal(err)
	}
	var total blobseer.CommitStats
	repeated := int(float64(chunks) * overlap)
	for v := 0; v < rounds; v++ {
		writes := make(map[uint64][]byte, chunks)
		for idx := 0; idx < chunks; idx++ {
			var fill byte
			if idx < repeated {
				fill = byte(idx) // identical content every round
			} else {
				fill = byte(64 + v*chunks + idx) // fresh content each round
			}
			writes[uint64(idx)] = bytes.Repeat([]byte{fill}, chunk)
		}
		_, cs, err := c.WriteVersionStats(gctx, blob, writes, uint64(chunks*chunk))
		if err != nil {
			b.Fatal(err)
		}
		total.Add(cs)
	}
	return total
}

// BenchmarkCommitSuccessiveNoCAS measures commit bytes-written for four
// successive checkpoints with 50% overlapping writes on the classic
// (blob, id)-addressed path: every body ships every round.
func BenchmarkCommitSuccessiveNoCAS(b *testing.B) {
	const chunk = 4096
	var total blobseer.CommitStats
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		d, err := blobseer.Deploy(transport.NewInProc(), 2, 4)
		if err != nil {
			b.Fatal(err)
		}
		c := d.Client()
		b.StartTimer()
		total = successiveCommits(b, c, 4, 32, chunk, 0.5)
		b.StopTimer()
		d.Close()
	}
	b.ReportMetric(float64(total.TransferBytes), "bytes_transferred")
	b.ReportMetric(float64(total.LogicalBytes), "bytes_logical")
	b.ReportMetric(100*float64(total.DedupChunks)/float64(total.Chunks), "dedup_hit_pct")
}

// BenchmarkCommitSuccessiveCAS is the same workload through the
// content-addressed repository: repeated content ships once, so
// bytes_transferred drops by the overlap fraction (plus cross-round reuse).
func BenchmarkCommitSuccessiveCAS(b *testing.B) {
	const chunk = 4096
	var total blobseer.CommitStats
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		d, err := blobseer.Deploy(transport.NewInProc(), 2, 4)
		if err != nil {
			b.Fatal(err)
		}
		c := d.Client()
		c.Dedup = true
		b.StartTimer()
		total = successiveCommits(b, c, 4, 32, chunk, 0.5)
		b.StopTimer()
		d.Close()
	}
	b.ReportMetric(float64(total.TransferBytes), "bytes_transferred")
	b.ReportMetric(float64(total.LogicalBytes), "bytes_logical")
	b.ReportMetric(100*float64(total.DedupChunks)/float64(total.Chunks), "dedup_hit_pct")
}

// BenchmarkRetireRefcountReclaim measures the refcount GC: retiring 7 of 8
// snapshots releases exactly the superseded chunk writes — O(retired
// chunks), no repository sweep (compare BenchmarkGCReclaim).
func BenchmarkRetireRefcountReclaim(b *testing.B) {
	const chunk = 4096
	var stats blobseer.ReclaimStats
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		d, err := blobseer.Deploy(transport.NewInProc(), 2, 4)
		if err != nil {
			b.Fatal(err)
		}
		c := d.Client()
		c.Dedup = true
		blob, err := c.CreateBlob(gctx, chunk)
		if err != nil {
			b.Fatal(err)
		}
		// 8 versions x 32 chunks of per-version content, all but the last
		// retired (the BenchmarkGCReclaim workload, dedup-committed).
		for v := 0; v < 8; v++ {
			writes := make(map[uint64][]byte)
			for idx := uint64(0); idx < 32; idx++ {
				writes[idx] = bytes.Repeat([]byte{byte(v)}, chunk)
			}
			if _, err := c.WriteVersion(gctx, blob, writes, 32*chunk); err != nil {
				b.Fatal(err)
			}
		}
		b.StartTimer()
		stats, err = c.RetireStats(gctx, blob, 7)
		if err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		if stats.ReclaimedChunks == 0 {
			b.Fatal("refcount retire reclaimed nothing")
		}
		d.Close()
	}
	b.ReportMetric(float64(stats.ReclaimedChunks), "chunks_reclaimed")
	b.ReportMetric(float64(stats.ReclaimedBytes), "bytes_reclaimed")
}
