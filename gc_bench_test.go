package blobcr_test

// Functional benchmark for the paper's future-work extension implemented
// here: transparent garbage collection of obsoleted snapshots
// (blobseer.Client.GC + cloud.Prune).

import (
	"bytes"
	"testing"

	"blobcr/internal/blobseer"
	"blobcr/internal/transport"
)

func BenchmarkGCReclaim(b *testing.B) {
	const chunk = 4096
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		d, err := blobseer.Deploy(transport.NewInProc(), 2, 4)
		if err != nil {
			b.Fatal(err)
		}
		c := d.Client()
		blob, err := c.CreateBlob(chunk)
		if err != nil {
			b.Fatal(err)
		}
		// 8 versions x 32 chunks, all but the last retired.
		for v := 0; v < 8; v++ {
			writes := make(map[uint64][]byte)
			for idx := uint64(0); idx < 32; idx++ {
				writes[idx] = bytes.Repeat([]byte{byte(v)}, chunk)
			}
			if _, err := c.WriteVersion(blob, writes, 32*chunk); err != nil {
				b.Fatal(err)
			}
		}
		if err := c.Retire(blob, 7); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		stats, err := c.GC(d.DataAddrs)
		if err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		if stats.DeletedChunks == 0 {
			b.Fatal("GC reclaimed nothing")
		}
		b.ReportMetric(float64(stats.DeletedChunks), "chunks_reclaimed")
		d.Close()
	}
}
