package blobcr_test

// Functional end-to-end tests of the paper's BASELINE configurations — the
// flows the simulator models are shown to work for real here:
//
//   - qcow2-disk: the VM's disk is a local qcow2 image backed by a base
//     image; a checkpoint copies the whole qcow2 file into PVFS as a new
//     file; restart re-creates the image from the PVFS copy.
//   - qcow2-full: savevm serializes the complete VM state into an internal
//     snapshot of the image before the copy; restart is loadvm — no reboot.
//
// These tests also demonstrate the baselines' cost structure functionally:
// the copied file grows with every checkpoint (Figure 5's mechanism), while
// BlobCR's commit stays proportional to the delta.

import (
	"bytes"
	"context"
	"io"
	"testing"

	"blobcr/internal/blcr"
	"blobcr/internal/pvfs"
	"blobcr/internal/qcow2"
	"blobcr/internal/transport"
	"blobcr/internal/vdisk"
	"blobcr/internal/vm"
)

const (
	bCluster = 4096
	bImgSize = 1 << 20
)

// bctx is the default context for baseline test operations.
var bctx = context.Background()

// copyToPVFS stores a qcow2 image file in PVFS as path (the qcow2-disk
// checkpoint operation: "the checkpointing proxy simply copies the locally
// stored qcow2 image to PVFS as a new file").
func copyToPVFS(t *testing.T, c *pvfs.Client, backend *vdisk.Buffer, path string) int64 {
	t.Helper()
	f, err := c.Create(bctx, path, 0)
	if err != nil {
		t.Fatal(err)
	}
	size := backend.Size()
	buf := make([]byte, 256*1024)
	for off := int64(0); off < size; off += int64(len(buf)) {
		n := int64(len(buf))
		if off+n > size {
			n = size - off
		}
		if err := vdisk.ReadFull(backend, buf[:n], off); err != nil {
			t.Fatal(err)
		}
		if _, err := f.WriteAt(buf[:n], off); err != nil {
			t.Fatal(err)
		}
	}
	return size
}

// fetchFromPVFS loads a PVFS file back into a fresh image backend.
func fetchFromPVFS(t *testing.T, c *pvfs.Client, path string) *vdisk.Buffer {
	t.Helper()
	f, err := c.Open(bctx, path)
	if err != nil {
		t.Fatal(err)
	}
	out := vdisk.NewBuffer()
	buf := make([]byte, 256*1024)
	for off := int64(0); off < f.Size(); off += int64(len(buf)) {
		n, err := f.ReadAt(buf, off)
		if n == 0 && err != nil {
			break
		}
		if _, werr := out.WriteAt(buf[:n], off); werr != nil {
			t.Fatal(werr)
		}
		if err == io.EOF {
			break
		}
	}
	return out
}

func TestBaselineQcow2DiskCheckpointRestart(t *testing.T) {
	// PVFS deployment holding the base image and the snapshots.
	d, err := pvfs.Deploy(transport.NewInProc(), 4)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	pc := d.Client()

	// Base raw image shared through PVFS (here: an in-memory stand-in the
	// qcow2 image uses as its read-only backing).
	base := vdisk.NewMem(bImgSize)

	// Local qcow2 image on the compute node, backed by the base image.
	backend := vdisk.NewBuffer()
	img, err := qcow2.Create(backend, bCluster, bImgSize, base, "base.raw")
	if err != nil {
		t.Fatal(err)
	}

	inst := vm.New("q-vm", img, vm.Config{BlockSize: 512, BootNoiseBytes: 8192})
	if err := inst.Boot(); err != nil {
		t.Fatal(err)
	}
	inst.FS().WriteFile("/state", []byte("baseline checkpoint content"))
	inst.FS().Sync()

	// Checkpoint: suspend, copy the qcow2 file to PVFS, resume.
	if err := inst.Suspend(); err != nil {
		t.Fatal(err)
	}
	img.Flush()
	copied := copyToPVFS(t, pc, backend, "/ckpt/q-vm-1.qcow2")
	if err := inst.Resume(); err != nil {
		t.Fatal(err)
	}

	// Post-checkpoint damage, then failure.
	inst.FS().WriteFile("/state", []byte("damaged"))
	inst.Kill()

	// Restart on another node: fetch the snapshot file from PVFS, open it
	// over the shared base image, reboot.
	backend2 := fetchFromPVFS(t, pc, "/ckpt/q-vm-1.qcow2")
	if backend2.Size() != copied {
		t.Fatalf("fetched %d bytes, copied %d", backend2.Size(), copied)
	}
	img2, err := qcow2.Open(backend2, base)
	if err != nil {
		t.Fatalf("open snapshot from PVFS: %v", err)
	}
	inst2 := vm.New("q-vm", img2, vm.Config{BlockSize: 512})
	if err := inst2.Boot(); err != nil {
		t.Fatal(err)
	}
	got, err := inst2.FS().ReadFile("/state")
	if err != nil || string(got) != "baseline checkpoint content" {
		t.Errorf("baseline rollback: %q, %v", got, err)
	}
}

func TestBaselineQcow2DiskFileGrowsAcrossCheckpoints(t *testing.T) {
	// The Figure 5 mechanism, functionally: each checkpoint copies the
	// whole local image, which only grows; PVFS accumulates full copies.
	d, err := pvfs.Deploy(transport.NewInProc(), 3)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	pc := d.Client()

	backend := vdisk.NewBuffer()
	img, err := qcow2.Create(backend, bCluster, bImgSize, nil, "")
	if err != nil {
		t.Fatal(err)
	}
	inst := vm.New("g-vm", img, vm.Config{BlockSize: 512, BootNoiseBytes: 4096})
	if err := inst.Boot(); err != nil {
		t.Fatal(err)
	}

	var sizes []int64
	var cumulative uint64
	for ck := 1; ck <= 3; ck++ {
		// Fresh data each round, in a new file (the guest workload dirties
		// new blocks, as the paper observes).
		inst.FS().WriteFile("/dump-"+string(rune('0'+ck)), bytes.Repeat([]byte{byte(ck)}, 64*1024))
		inst.FS().Sync()
		img.Flush()
		sizes = append(sizes, backend.Size())
		copyToPVFS(t, pc, backend, "/ckpt/g-"+string(rune('0'+ck))+".qcow2")
	}
	for i := 1; i < len(sizes); i++ {
		if sizes[i] <= sizes[i-1] {
			t.Errorf("qcow2 file did not grow: checkpoint %d is %d bytes, previous %d", i+1, sizes[i], sizes[i-1])
		}
	}
	cumulative, err = pc.Usage(bctx)
	if err != nil {
		t.Fatal(err)
	}
	// PVFS holds all three full copies: more than 3x the first copy.
	if cumulative < uint64(3*sizes[0]) {
		t.Errorf("PVFS holds %d bytes, want >= %d (duplicate accumulation)", cumulative, 3*sizes[0])
	}
}

func TestBaselineQcow2FullSavevmRestore(t *testing.T) {
	// qcow2-full: the whole VM (processes included) is serialized with
	// savevm into the image, the image goes to PVFS, and restart is loadvm
	// — no reboot, process state intact WITHOUT any dump files.
	d, err := pvfs.Deploy(transport.NewInProc(), 3)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	pc := d.Client()

	backend := vdisk.NewBuffer()
	img, err := qcow2.Create(backend, bCluster, bImgSize, nil, "")
	if err != nil {
		t.Fatal(err)
	}
	inst := vm.New("f-vm", img, vm.Config{BlockSize: 512, BootNoiseBytes: 4096, OSOverheadBytes: 64 * 1024})
	if err := inst.Boot(); err != nil {
		t.Fatal(err)
	}
	proc := blcr.NewProcess(1)
	heap := proc.Alloc("solver", 32*1024)
	for i := range heap {
		heap[i] = byte(i % 7)
	}
	proc.SetRegisters(blcr.Registers{PC: 5555})
	inst.AddProcess(proc)

	// savevm into the image, then copy the image to PVFS.
	if err := inst.Suspend(); err != nil {
		t.Fatal(err)
	}
	state, err := inst.SaveVM()
	if err != nil {
		t.Fatal(err)
	}
	if err := img.Snapshot("ckpt-1", state); err != nil {
		t.Fatal(err)
	}
	img.Flush()
	diskOnly := int64(len(state))
	copyToPVFS(t, pc, backend, "/ckpt/f-vm.qcow2")
	if backend.Size() < diskOnly {
		t.Fatalf("image (%d) smaller than vmstate (%d)?", backend.Size(), diskOnly)
	}
	inst.Kill()

	// Restart: fetch image, restore the internal snapshot, loadvm, resume.
	backend2 := fetchFromPVFS(t, pc, "/ckpt/f-vm.qcow2")
	img2, err := qcow2.Open(backend2, nil)
	if err != nil {
		t.Fatal(err)
	}
	vmstate, err := img2.RestoreSnapshot("ckpt-1")
	if err != nil {
		t.Fatal(err)
	}
	inst2 := vm.New("f-vm", img2, vm.Config{})
	if err := inst2.LoadVM(vmstate); err != nil {
		t.Fatalf("loadvm: %v", err)
	}
	if err := inst2.Resume(); err != nil {
		t.Fatal(err)
	}
	// No reboot happened, and the process memory is back without any
	// checkpoint files in the guest.
	if inst2.BootCount() != 1 {
		t.Errorf("BootCount = %d; qcow2-full must resume without rebooting", inst2.BootCount())
	}
	p2, ok := inst2.Process(1)
	if !ok {
		t.Fatal("process lost through savevm/loadvm + PVFS round trip")
	}
	got, _ := p2.Arena("solver")
	if !bytes.Equal(got, heap) {
		t.Error("process memory corrupted")
	}
	if p2.Registers().PC != 5555 {
		t.Error("registers lost")
	}
	if _, err := inst2.FS().ReadDir("/ckpt"); err == nil {
		entries, _ := inst2.FS().ReadDir("/ckpt")
		if len(entries) > 0 {
			t.Error("qcow2-full should not leave dump files in the guest")
		}
	}
}
