#!/bin/sh
# check-timing.sh — keep ad-hoc stopwatch code out of the instrumented layers.
#
# Latency measurements in the instrumented layers must go through
# internal/obs (obs.StartTimer / Stopwatch.ObserveInto): a raw
# time.Now()/time.Since pair produces a number nothing scrapes, invisible to
# METRICS and the debug listeners. This check counts such calls per layer in
# non-test files and fails when a package exceeds its frozen baseline.
#
# The baselines are the pre-telemetry remainder: supervisor and repair stamp
# *domain* times (event timestamps, recovery deadlines, flight-dump mirror
# times, report.Elapsed fields served over their own wire protocols), which
# are data, not metrics. internal/obs is the measuring instrument itself —
# the Stopwatch implementation plus the span/flight recorder's and history
# ring's sample stamps are the one place raw clock reads belong, and its
# baseline keeps that set from growing unreviewed. internal/health stamps
# Alert.Since (when a breach streak began — domain data on the alert). Lowering a baseline after a cleanup is
# encouraged; raising one needs a reason in the commit that does it.
set -eu
cd "$(dirname "$0")/.."

fail=0
check() {
    pkg=$1
    baseline=$2
    count=$(grep -rn 'time\.Now()\|time\.Since(' --include='*.go' "$pkg" 2>/dev/null \
        | grep -v '_test\.go:' | wc -l)
    if [ "$count" -gt "$baseline" ]; then
        echo "FAIL: $pkg has $count time.Now()/time.Since calls (baseline $baseline)." >&2
        echo "      New latency measurements there must use obs.StartTimer +" >&2
        echo "      Stopwatch.ObserveInto so they land in the metrics registry." >&2
        grep -rn 'time\.Now()\|time\.Since(' --include='*.go' "$pkg" | grep -v '_test\.go:' >&2
        fail=1
    fi
}

check internal/transport  0
check internal/blobseer   0
check internal/mirror     0
check internal/proxy      0
check internal/chunkstore 0
check internal/seglog     0
check internal/obs        8
check internal/health     1
check internal/supervisor 13
check internal/repair     9

if [ "$fail" -ne 0 ]; then
    exit 1
fi
echo "timing check OK: instrumented layers measure through internal/obs"
