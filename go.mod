module blobcr

go 1.24
