package blobcr_test

// One benchmark per table and figure of the paper's evaluation section,
// plus the ablations. Each benchmark regenerates its experiment's series
// through internal/bench and reports the headline metric the paper quotes
// so `go test -bench=. -benchmem` doubles as the reproduction run. The full
// tables are printed by cmd/blobcr-bench.

import (
	"testing"

	"blobcr/internal/bench"
	"blobcr/internal/simcloud"
)

var (
	params = simcloud.Default()
	cm1    = simcloud.DefaultCM1()
)

// last returns the final row of a series (the largest scale).
func last(s bench.Series) bench.Row { return s.Rows[len(s.Rows)-1] }

func BenchmarkFig2aCheckpoint50MB(b *testing.B) {
	var s bench.Series
	for i := 0; i < b.N; i++ {
		s = bench.Fig2aCheckpoint50MB(params)
	}
	r := last(s)
	b.ReportMetric(r.Values[0], "BlobCR-app_s@120")
	b.ReportMetric(r.Values[1], "qcow2-disk-app_s@120")
	b.ReportMetric(r.Values[4], "qcow2-full_s@120")
}

func BenchmarkFig2bCheckpoint200MB(b *testing.B) {
	var s bench.Series
	for i := 0; i < b.N; i++ {
		s = bench.Fig2bCheckpoint200MB(params)
	}
	r := last(s)
	b.ReportMetric(r.Values[0], "BlobCR-app_s@120")
	b.ReportMetric(r.Values[1]/r.Values[0], "app_speedup_x")
	b.ReportMetric(r.Values[3]/r.Values[2], "blcr_speedup_x")
	b.ReportMetric(r.Values[4]/r.Values[0], "vs_full_x")
}

func BenchmarkFig3aRestart50MB(b *testing.B) {
	var s bench.Series
	for i := 0; i < b.N; i++ {
		s = bench.Fig3aRestart50MB(params)
	}
	r := last(s)
	b.ReportMetric(r.Values[0], "BlobCR-app_s@120")
	b.ReportMetric(r.Values[1]/r.Values[0], "vs_qcow2_x")
}

func BenchmarkFig3bRestart200MB(b *testing.B) {
	var s bench.Series
	for i := 0; i < b.N; i++ {
		s = bench.Fig3bRestart200MB(params)
	}
	r := last(s)
	b.ReportMetric(r.Values[0], "BlobCR-app_s@120")
	b.ReportMetric(r.Values[1]/r.Values[0], "vs_qcow2_x")
	b.ReportMetric(r.Values[4]/r.Values[0], "vs_full_x")
}

func BenchmarkFig4SnapshotSize(b *testing.B) {
	var s bench.Series
	for i := 0; i < b.N; i++ {
		s = bench.Fig4SnapshotSize(params)
	}
	r := last(s) // 200 MB row
	b.ReportMetric(r.Values[0], "BlobCR-app_MB")
	b.ReportMetric(r.Values[1], "qcow2-disk-app_MB")
	b.ReportMetric(r.Values[4], "qcow2-full_MB")
}

func BenchmarkFig5aSuccessiveTime(b *testing.B) {
	var s bench.Series
	for i := 0; i < b.N; i++ {
		s = bench.Fig5aSuccessiveTime(params)
	}
	first, fourth := s.Rows[0], s.Rows[3]
	b.ReportMetric(fourth.Values[0]-first.Values[0], "BlobCR_growth_s")
	b.ReportMetric(fourth.Values[1]-first.Values[1], "qcow2-disk_growth_s")
}

func BenchmarkFig5bSuccessiveSpace(b *testing.B) {
	var s bench.Series
	for i := 0; i < b.N; i++ {
		s = bench.Fig5bSuccessiveSpace(params)
	}
	r := last(s)
	b.ReportMetric(r.Values[0], "BlobCR_MB@4")
	b.ReportMetric(r.Values[1], "qcow2-disk_MB@4")
	b.ReportMetric(r.Values[4], "qcow2-full_MB@4")
}

func BenchmarkFig5cSuccessiveDedup(b *testing.B) {
	var s bench.Series
	for i := 0; i < b.N; i++ {
		s = bench.Fig5cSuccessiveDedup(params)
	}
	r := last(s)
	b.ReportMetric(r.Values[0], "logical_MB@4")
	b.ReportMetric(r.Values[2], "storage_MB@4")
	b.ReportMetric(r.Values[3], "hit_rate_pct@4")
}

func BenchmarkTable1CM1SnapshotSize(b *testing.B) {
	var s bench.Series
	for i := 0; i < b.N; i++ {
		s = bench.Table1CM1SnapshotSize(params, cm1)
	}
	r := s.Rows[0]
	b.ReportMetric(r.Values[0], "BlobCR-app_MB")
	b.ReportMetric(r.Values[1], "qcow2-disk-app_MB")
	b.ReportMetric(r.Values[2], "BlobCR-blcr_MB")
	b.ReportMetric(r.Values[3], "qcow2-disk-blcr_MB")
}

func BenchmarkFig6CM1CheckpointTime(b *testing.B) {
	var s bench.Series
	for i := 0; i < b.N; i++ {
		s = bench.Fig6CM1Checkpoint(params, cm1)
	}
	r := last(s) // 400 processes
	b.ReportMetric(r.Values[0], "BlobCR-app_s@400")
	b.ReportMetric(r.Values[1]/r.Values[0], "app_speedup_x")
	b.ReportMetric(r.Values[3]/r.Values[2], "blcr_speedup_x")
}

func BenchmarkAblationStripeSize(b *testing.B) {
	var s bench.Series
	for i := 0; i < b.N; i++ {
		s = bench.AblationStripeSize(params)
	}
	b.ReportMetric(s.Rows[2].Values[0], "ckpt_s@256KB")
}

func BenchmarkAblationReplication(b *testing.B) {
	var s bench.Series
	for i := 0; i < b.N; i++ {
		s = bench.AblationReplication(params)
	}
	b.ReportMetric(s.Rows[1].Values[0]/s.Rows[0].Values[0], "r2_vs_r1_x")
}

func BenchmarkAblationRestartTransfer(b *testing.B) {
	var s bench.Series
	for i := 0; i < b.N; i++ {
		s = bench.AblationRestartTransfer(params)
	}
	r := last(s)
	b.ReportMetric(r.Values[1]/r.Values[0], "broadcast_vs_lazy_x")
}

func BenchmarkAblationMetadataProviders(b *testing.B) {
	var s bench.Series
	for i := 0; i < b.N; i++ {
		s = bench.AblationMetadataProviders(params)
	}
	b.ReportMetric(s.Rows[0].Values[0]/s.Rows[4].Values[0], "m1_vs_m20_x")
}

func BenchmarkAblationGranularity(b *testing.B) {
	var s bench.Series
	for i := 0; i < b.N; i++ {
		s = bench.AblationGranularity(params)
	}
	for _, r := range s.Rows {
		if r.X == 200 {
			b.ReportMetric(r.Values[2], "tax_pct@200MB")
		}
	}
}
