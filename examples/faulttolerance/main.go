// Transparent fault tolerance: the paper's process-level (blcr) path.
//
// The application never writes a checkpoint file — it only computes in its
// process memory and calls Checkpoint(nil). The framework (the modified MPI
// library of Section 3.3) drains the channels with markers, dumps each
// rank's whole process image with blcr, syncs the guest file system,
// requests a disk snapshot from the co-located proxy, and records the
// global checkpoint. After repeated node failures the job keeps rolling
// back and finishing.
//
// Run with: go run ./examples/faulttolerance
package main

import (
	"context"
	"encoding/binary"
	"fmt"
	"log"

	"blobcr/internal/blcr"
	"blobcr/internal/cloud"
	"blobcr/internal/core"
	"blobcr/internal/vm"
)

const (
	totalWork = 300 // iterations to complete
	ckptEvery = 100
)

func main() {
	fmt.Println("== transparent checkpoint-restart (blcr mode) under repeated failures ==")
	ctx := context.Background()

	cl, err := cloud.New(cloud.Config{Nodes: 6, MetaProviders: 2, Replication: 2})
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()
	base, err := cl.UploadBaseImage(ctx, make([]byte, 2<<20), 4096)
	if err != nil {
		log.Fatal(err)
	}
	job, err := core.NewJob(ctx, cl, base, core.JobConfig{
		Instances: 3,
		Mode:      core.ProcessLevel,
		VMConfig:  vm.Config{BlockSize: 512, BootNoiseBytes: 8 * 1024},
	})
	if err != nil {
		log.Fatal(err)
	}

	// body computes in blcr-managed memory and checkpoints periodically.
	// It is written restart-obliviously: on a restored run it simply picks
	// the iteration counter out of its (restored) registers.
	body := func(r *core.Rank) error {
		var counter []byte
		if r.Restored {
			var ok bool
			counter, ok = r.Proc.Arena("counter")
			if !ok {
				return fmt.Errorf("rank %d: restored image lacks state", r.Comm.Rank())
			}
			fmt.Printf("  rank %d resumed transparently at iteration %d on %s\n",
				r.Comm.Rank(), binary.LittleEndian.Uint64(counter), r.Instance().Node.Name)
		} else {
			counter = r.Proc.Alloc("counter", 8)
		}
		for {
			iter := binary.LittleEndian.Uint64(counter)
			if iter >= totalWork {
				return nil
			}
			iter++
			binary.LittleEndian.PutUint64(counter, iter)
			r.Proc.SetRegisters(blcr.Registers{PC: iter})
			if iter%ckptEvery == 0 {
				if _, err := r.Checkpoint(ctx, nil); err != nil {
					return err
				}
				if r.Comm.Rank() == 0 {
					fmt.Printf("  checkpoint at iteration %d\n", iter)
				}
			}
		}
	}

	if err := job.Run(body); err != nil {
		log.Fatal(err)
	}
	fmt.Println("first run finished (all checkpoints taken)")

	// Now keep breaking nodes and restarting from the latest checkpoint.
	for round := 1; round <= 2; round++ {
		victim := job.Deployment().Instances[round%3].Node.Name
		if err := cl.FailNode(ctx, victim); err != nil {
			log.Fatal(err)
		}
		cl.KillDeploymentInstancesOn(job.Deployment())
		ckpt, err := job.LatestCheckpoint()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("failure round %d: node %s down, rolling back to checkpoint %d\n", round, victim, ckpt)
		if err := job.Restart(ctx, ckpt, body); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("failure round %d: job completed after rollback\n", round)
	}
	fmt.Println("fault tolerance example completed: 2 failures survived transparently")
}
