// Checkpoint inspection: snapshots are standalone disk images.
//
// Thanks to shadowing and cloning, every checkpoint snapshot appears as an
// independent, fully fledged disk image that the cloud client can download
// and browse — the paper's scenario of inspecting (and even manually
// fixing) checkpoints offline. This example takes two checkpoints of a
// running job, then mounts each snapshot's guest file system directly from
// the repository and diffs the application's state between them, without
// touching the running VM.
//
// Run with: go run ./examples/inspect
package main

import (
	"context"
	"fmt"
	"log"

	"blobcr/internal/cloud"
	"blobcr/internal/core"
	"blobcr/internal/guestfs"
	"blobcr/internal/vm"
)

func main() {
	fmt.Println("== inspecting checkpoint snapshots as standalone images ==")
	ctx := context.Background()

	cl, err := cloud.New(cloud.Config{Nodes: 3, MetaProviders: 2, Replication: 1})
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()
	base, err := cl.UploadBaseImage(ctx, make([]byte, 2<<20), 4096)
	if err != nil {
		log.Fatal(err)
	}
	job, err := core.NewJob(ctx, cl, base, core.JobConfig{
		Instances: 1,
		Mode:      core.AppLevel,
		VMConfig:  vm.Config{BlockSize: 512, BootNoiseBytes: 8 * 1024},
	})
	if err != nil {
		log.Fatal(err)
	}

	// Take two checkpoints with different state and an evolving log file.
	err = job.Run(func(r *core.Rank) error {
		for phase := 1; phase <= 2; phase++ {
			state := fmt.Sprintf("phase-%d solver state", phase)
			logLine := fmt.Sprintf("finished phase %d\n", phase)
			f, err := r.FS().Open("/app.log")
			if err != nil {
				f, err = r.FS().Create("/app.log")
				if err != nil {
					return err
				}
			}
			if _, err := f.Append([]byte(logLine)); err != nil {
				return err
			}
			if _, err := r.Checkpoint(ctx, func(fs *guestfs.FS) error {
				return fs.WriteFile(r.StatePath(), []byte(state))
			}); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	cps := job.Deployment().Checkpoints()
	fmt.Printf("recorded %d global checkpoints\n", len(cps))

	for _, cp := range cps {
		for vmID, ref := range cp.Snapshots {
			fs, err := core.InspectSnapshot(ctx, cl, ref)
			if err != nil {
				log.Fatal(err)
			}
			state, err := fs.ReadFile("/ckpt/rank-0.state")
			if err != nil {
				log.Fatal(err)
			}
			appLog, err := fs.ReadFile("/app.log")
			if err != nil {
				log.Fatal(err)
			}
			entries, err := fs.ReadDir("/")
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("\ncheckpoint %d, %s -> blob %d version %d\n", cp.ID, vmID, ref.Blob, ref.Version)
			fmt.Printf("  state file: %q\n", state)
			fmt.Printf("  app log (%d bytes): %q\n", len(appLog), appLog)
			fmt.Printf("  root directory:")
			for _, e := range entries {
				fmt.Printf(" %s", e.Name)
			}
			fmt.Println()
		}
	}
	fmt.Println("\nboth snapshots readable independently — earlier ones unaffected by later commits")
}
