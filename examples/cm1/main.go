// CM1 on BlobCR: the paper's real-life case study (Section 4.4), end to
// end on one machine.
//
// A CM1-like atmospheric simulation runs as a 4-rank MPI job (2 VMs x 2
// ranks). It integrates the model, takes an application-level checkpoint
// through BlobCR (CM1 dumps only its prognostic fields — that is why
// Table 1 shows app-level snapshots 2.4x smaller than blcr ones), suffers a
// node failure, and resumes bit-exactly from the checkpoint files.
//
// Run with: go run ./examples/cm1
package main

import (
	"context"
	"fmt"
	"log"

	"blobcr/internal/apps/cm1"
	"blobcr/internal/cloud"
	"blobcr/internal/core"
	"blobcr/internal/guestfs"
	"blobcr/internal/vm"
)

func main() {
	fmt.Println("== CM1 hurricane simulation with BlobCR checkpointing ==")
	ctx := context.Background()

	cl, err := cloud.New(cloud.Config{Nodes: 4, MetaProviders: 2, Replication: 2})
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()

	base, err := cl.UploadBaseImage(ctx, make([]byte, 4<<20), 4096)
	if err != nil {
		log.Fatal(err)
	}

	cfg := cm1.Config{NX: 20, NY: 20, NZ: 4, Vars: 3, WorkFactor: 2, SummaryEvery: 5}
	fmt.Printf("subdomain %dx%dx%d, %d variables: %d KB state, %d KB allocated per rank\n",
		cfg.NX, cfg.NY, cfg.NZ, cfg.Vars, cfg.StateBytes()/1024, cfg.AllocBytes()/1024)

	job, err := core.NewJob(ctx, cl, base, core.JobConfig{
		Instances:  2,
		RanksPerVM: 2,
		Mode:       core.AppLevel,
		VMConfig:   vm.Config{BlockSize: 512, BootNoiseBytes: 16 * 1024},
	})
	if err != nil {
		log.Fatal(err)
	}

	const ckptAt, totalIters = 10, 20
	var ckptID int
	var finalSum uint64

	// Phase 1: integrate to ckptAt, checkpoint, continue to totalIters to
	// learn the reference answer, then "lose" everything after the
	// checkpoint.
	err = job.Run(func(r *core.Rank) error {
		sim, err := cm1.New(cfg, r.Comm, r.Proc)
		if err != nil {
			return err
		}
		for i := 0; i < ckptAt; i++ {
			if err := sim.Step(); err != nil {
				return err
			}
			if cfg.SummaryEvery > 0 && int(sim.Iteration())%cfg.SummaryEvery == 0 {
				if err := sim.WriteSummary(r.FS(), fmt.Sprintf("/summary-%d.dat", r.Comm.Rank())); err != nil {
					return err
				}
			}
		}
		id, err := r.Checkpoint(ctx, func(fs *guestfs.FS) error {
			return sim.WriteCheckpoint(fs, r.StatePath())
		})
		if err != nil {
			return err
		}
		for i := ckptAt; i < totalIters; i++ {
			if err := sim.Step(); err != nil {
				return err
			}
		}
		if r.Comm.Rank() == 0 {
			ckptID = id
			finalSum = sim.Checksum()
			fmt.Printf("checkpoint %d at iteration %d; reference checksum after %d iters: %016x\n",
				id, ckptAt, totalIters, finalSum)
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	// Node failure.
	victim := job.Deployment().Instances[1].Node.Name
	cl.FailNode(ctx, victim)
	cl.KillDeploymentInstancesOn(job.Deployment())
	fmt.Printf("node %s failed; restarting from checkpoint %d\n", victim, ckptID)

	// Phase 2: restart and re-integrate; the result must be bit-identical.
	err = job.Restart(ctx, ckptID, func(r *core.Rank) error {
		sim, err := cm1.New(cfg, r.Comm, r.Proc)
		if err != nil {
			return err
		}
		if err := sim.ReadCheckpoint(r.FS(), r.StatePath()); err != nil {
			return err
		}
		if sim.Iteration() != ckptAt {
			return fmt.Errorf("rank %d resumed at iteration %d, want %d", r.Comm.Rank(), sim.Iteration(), ckptAt)
		}
		for i := ckptAt; i < totalIters; i++ {
			if err := sim.Step(); err != nil {
				return err
			}
		}
		if r.Comm.Rank() == 0 {
			got := sim.Checksum()
			if got != finalSum {
				return fmt.Errorf("restarted run diverged: %016x != %016x", got, finalSum)
			}
			fmt.Printf("restart verified: checksum %016x matches the uninterrupted run\n", got)
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("CM1 example completed: rollback was bit-exact")
}
