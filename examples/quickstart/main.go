// Quickstart: the complete BlobCR loop on a single machine.
//
// It deploys a small IaaS cloud (4 nodes with a BlobSeer checkpoint
// repository and per-node checkpointing proxies), uploads a base disk
// image, boots a two-instance MPI job, takes an application-level
// checkpoint through the coordinated protocol, injects a node failure, and
// rolls the job back — demonstrating that both the process state and the
// guest file system (including post-checkpoint garbage) are restored.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"encoding/binary"
	"fmt"
	"log"

	"blobcr/internal/cloud"
	"blobcr/internal/core"
	"blobcr/internal/guestfs"
	"blobcr/internal/mpi"
	"blobcr/internal/vm"
)

func main() {
	fmt.Println("== BlobCR quickstart ==")
	ctx := context.Background()

	// 1. Deploy the cloud: 4 compute nodes, each contributing its local
	// disk to the checkpoint repository, chunk replication 2.
	cl, err := cloud.New(cloud.Config{Nodes: 4, MetaProviders: 2, Replication: 2})
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()
	fmt.Printf("deployed cloud: %d nodes\n", len(cl.Nodes()))

	// 2. Upload a 2 MB base disk image.
	base, err := cl.UploadBaseImage(ctx, make([]byte, 2<<20), 4096)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("uploaded base image: %s\n", base)

	// 3. Boot a 2-instance MPI job with application-level checkpointing.
	job, err := core.NewJob(ctx, cl, base, core.JobConfig{
		Instances: 2,
		Mode:      core.AppLevel,
		VMConfig:  vm.Config{BlockSize: 512, BootNoiseBytes: 16 * 1024},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("booted %d instances (%d MPI ranks)\n", 2, job.Ranks())

	// 4. Run: compute to iteration 1000, checkpoint asynchronously —
	// the VMs resume as soon as their dirty chunks are captured, and the
	// upload overlaps with the computation that follows — then resolve the
	// handle.
	var ckptID int
	err = job.Run(func(r *core.Rank) error {
		iter := uint64(1000)
		// An allreduce stands in for the application's communication.
		if _, err := r.Comm.Allreduce(float64(iter), mpi.OpMax); err != nil {
			return err
		}
		pending, err := r.CheckpointAsync(ctx, func(fs *guestfs.FS) error {
			buf := make([]byte, 8)
			binary.LittleEndian.PutUint64(buf, iter)
			return fs.WriteFile(r.StatePath(), buf)
		})
		if err != nil {
			return err
		}
		// Compute while the snapshots commit in the background...
		if _, err := r.Comm.Allreduce(float64(iter+1), mpi.OpMax); err != nil {
			return err
		}
		// ...then resolve the handle into the recorded checkpoint id.
		id, err := pending.Wait()
		if err != nil {
			return err
		}
		if r.Comm.Rank() == 0 {
			ckptID = id
			fmt.Printf("global checkpoint %d recorded (committed while computing)\n", id)
		}
		// Work past the checkpoint; these writes must be rolled back.
		return r.FS().WriteFile("/scratch.log", []byte("will be rolled back"))
	})
	if err != nil {
		log.Fatal(err)
	}

	// 5. Fail-stop a node hosting one of the instances.
	victim := job.Deployment().Instances[0].Node.Name
	if err := cl.FailNode(ctx, victim); err != nil {
		log.Fatal(err)
	}
	dead := cl.KillDeploymentInstancesOn(job.Deployment())
	fmt.Printf("injected fail-stop on %s (killed %v)\n", victim, dead)

	// 6. Restart from the checkpoint.
	err = job.Restart(ctx, ckptID, func(r *core.Rank) error {
		buf, err := r.FS().ReadFile(r.StatePath())
		if err != nil {
			return fmt.Errorf("rank %d: state missing after rollback: %w", r.Comm.Rank(), err)
		}
		iter := binary.LittleEndian.Uint64(buf)
		if _, err := r.FS().ReadFile("/scratch.log"); err == nil {
			return fmt.Errorf("rank %d: post-checkpoint I/O was NOT rolled back", r.Comm.Rank())
		}
		fmt.Printf("rank %d restored at iteration %d on %s (file system rolled back)\n",
			r.Comm.Rank(), iter, r.Instance().Node.Name)
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("quickstart completed: checkpoint, failure, rollback all verified")
}
